//! Deterministic fault injection for the serve stack: an in-process
//! TCP proxy that sits between a client and `otrepaird` and breaks the
//! byte stream on purpose — truncated frames, mid-frame disconnects,
//! byte-stalls, delayed writes, garbage headers.
//!
//! Everything is **seed-driven**: a [`FaultProxy`] resolves each
//! fault's cut point from `splitmix_seed(seed, conn_index)` (the same
//! SplitMix64 derivation the repair kernels use for their row
//! streams), so a chaos scenario replays byte-for-byte from its seed
//! alone. `tests/chaos.rs` leans on this to assert the daemon survives
//! every scripted fault *and* that any repair which succeeds through
//! the proxy is byte-identical to an offline apply.
//!
//! The proxy is test infrastructure, not a production component: it
//! ships in the library (rather than `#[cfg(test)]`) so integration
//! tests and downstream crates can reuse it, but nothing in the daemon
//! references it.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use otr_par::splitmix_seed;

/// How often proxy pumps wake to check the stop flag.
const PUMP_POLL: Duration = Duration::from_millis(50);

/// A half-open byte range `[lo, hi)` that a seeded draw resolves to a
/// single offset: `lo + draw % (hi - lo)`. Spans let a scenario say
/// "cut somewhere inside the response payload" while the *exact* cut
/// stays a pure function of the proxy seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Inclusive lower bound (bytes forwarded before the fault fires).
    pub lo: u64,
    /// Exclusive upper bound; must be `> lo`.
    pub hi: u64,
}

impl Span {
    /// The span covering exactly `[lo, hi)`.
    #[must_use]
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(hi > lo, "empty span [{lo}, {hi})");
        Self { lo, hi }
    }

    /// Resolve to a concrete offset with a seeded draw.
    fn resolve(self, draw: u64) -> u64 {
        self.lo + draw % (self.hi - self.lo)
    }
}

/// One scripted fault, applied to one proxied connection.
#[derive(Debug, Clone)]
pub enum Fault {
    /// Forward everything untouched (a control connection).
    None,
    /// Forward client→server bytes up to a seeded offset in [`Span`],
    /// then close both directions: the server sees a truncated frame.
    TruncateRequest(Span),
    /// Forward server→client bytes up to a seeded offset, then close
    /// both directions: the client sees a mid-frame disconnect while
    /// the server completed its work.
    TruncateResponse(Span),
    /// Forward client→server bytes up to a seeded offset, then go
    /// silent *without* closing — the classic slow-loris shape the
    /// server's frame deadline exists for. At least one byte is always
    /// forwarded so the deadline clock arms.
    StallRequest(Span),
    /// Forward everything, but sleep `delay` before each client→server
    /// chunk: a slow network that should succeed within a generous
    /// deadline.
    DelayWrites {
        /// Sleep before each forwarded chunk.
        delay: Duration,
        /// Chunks to delay before reverting to full speed (bounds the
        /// total added latency).
        first_chunks: u32,
    },
    /// Replace the first bytes the client sends with garbage whose
    /// leading byte has its high bit forced on — never a valid `'O'`
    /// magic — so the server must answer `BadFrame` and close.
    GarbageHeader {
        /// How many leading bytes to corrupt (seeded content).
        bytes: usize,
    },
}

/// A seeded fault-injecting TCP proxy in front of one upstream server.
///
/// Connection `i` (0-based accept order) gets `script[i]`; connections
/// past the end of the script are forwarded clean, which is what lets
/// a retrying client recover: the retry's fresh connection falls off
/// the script.
#[derive(Debug)]
pub struct FaultProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<AtomicU64>,
    accept_thread: Option<std::thread::JoinHandle<()>>,
}

impl FaultProxy {
    /// Start a proxy on an ephemeral loopback port forwarding to
    /// `upstream`. `script[i]` is the fault for the `i`-th accepted
    /// connection; `seed` resolves every [`Span`] and garbage byte.
    ///
    /// # Errors
    /// Propagates listener bind failures.
    pub fn spawn(upstream: SocketAddr, script: Vec<Fault>, seed: u64) -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns = Arc::new(AtomicU64::new(0));
        let accept_stop = Arc::clone(&stop);
        let accept_conns = Arc::clone(&conns);
        let accept_thread = std::thread::spawn(move || {
            let mut pumps = Vec::new();
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(client) = conn else { continue };
                let index = accept_conns.fetch_add(1, Ordering::SeqCst);
                let fault = script.get(index as usize).cloned().unwrap_or(Fault::None);
                let draw = splitmix_seed(seed, index);
                let stop = Arc::clone(&accept_stop);
                pumps.push(std::thread::spawn(move || {
                    run_conn(client, upstream, &fault, draw, &stop);
                }));
                pumps.retain(|h| !h.is_finished());
            }
            for h in pumps {
                let _ = h.join();
            }
        });
        Ok(Self {
            addr,
            stop,
            conns,
            accept_thread: Some(accept_thread),
        })
    }

    /// The proxy's listen address — point clients here.
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Connections accepted so far.
    #[must_use]
    pub fn connections(&self) -> u64 {
        self.conns.load(Ordering::SeqCst)
    }

    /// Stop accepting and tear down every pump. Called by `Drop`;
    /// idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the accept loop so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// What a pump does when its budget runs out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Exhausted {
    /// Close both halves (truncation / disconnect faults).
    Close,
    /// Keep the sockets open but forward nothing more (stall faults).
    Stall,
}

/// Per-direction forwarding policy, resolved from the connection's
/// fault and seed draw.
#[derive(Debug, Clone, Copy)]
struct PumpPlan {
    /// Bytes to forward before `exhausted` applies (`u64::MAX` =
    /// unlimited).
    budget: u64,
    exhausted: Exhausted,
    /// Sleep before each forwarded chunk, for the first
    /// `delay_chunks` chunks.
    delay: Option<Duration>,
    delay_chunks: u32,
}

impl PumpPlan {
    fn clean() -> Self {
        Self {
            budget: u64::MAX,
            exhausted: Exhausted::Close,
            delay: None,
            delay_chunks: 0,
        }
    }
}

/// Serve one proxied connection according to its fault.
fn run_conn(
    mut client: TcpStream,
    upstream: SocketAddr,
    fault: &Fault,
    draw: u64,
    stop: &Arc<AtomicBool>,
) {
    let Ok(server) = TcpStream::connect(upstream) else {
        return;
    };
    let _ = client.set_nodelay(true);
    let _ = server.set_nodelay(true);

    // GarbageHeader corrupts the first client bytes *before* the
    // generic pumps take over.
    let mut c2s_plan = PumpPlan::clean();
    let mut s2c_plan = PumpPlan::clean();
    match fault {
        Fault::None => {}
        Fault::TruncateRequest(span) => {
            c2s_plan.budget = span.resolve(draw);
            c2s_plan.exhausted = Exhausted::Close;
        }
        Fault::TruncateResponse(span) => {
            s2c_plan.budget = span.resolve(draw);
            s2c_plan.exhausted = Exhausted::Close;
        }
        Fault::StallRequest(span) => {
            // Forward at least one byte so the server's frame-deadline
            // clock arms — a stall before any byte is just an idle
            // connection, which the deadline deliberately ignores.
            c2s_plan.budget = span.resolve(draw).max(1);
            c2s_plan.exhausted = Exhausted::Stall;
        }
        Fault::DelayWrites {
            delay,
            first_chunks,
        } => {
            c2s_plan.delay = Some(*delay);
            c2s_plan.delay_chunks = *first_chunks;
        }
        Fault::GarbageHeader { bytes } => {
            let mut server_w = match server.try_clone() {
                Ok(s) => s,
                Err(_) => return,
            };
            let n = (*bytes).max(1);
            let mut garbage = Vec::with_capacity(n);
            for i in 0..n {
                let b = (splitmix_seed(draw, i as u64) & 0xFF) as u8;
                // Force the high bit on the lead byte: the protocol
                // magic starts with ASCII 'O' (0x4F, high bit clear),
                // so this can never alias a valid frame.
                garbage.push(if i == 0 { b | 0x80 } else { b });
            }
            if server_w.write_all(&garbage).is_err() {
                return;
            }
            // Swallow the same number of real client bytes so the
            // stream stays aligned (the server will close on the bad
            // magic regardless).
            c2s_plan.budget = 0;
            c2s_plan.exhausted = Exhausted::Stall;
            let mut sink = vec![0u8; n];
            let _ = client.set_read_timeout(Some(PUMP_POLL));
            let mut eaten = 0;
            while eaten < n && !stop.load(Ordering::SeqCst) {
                match client.read(&mut sink[eaten..]) {
                    Ok(0) => break,
                    Ok(k) => eaten += k,
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) => {}
                    Err(_) => break,
                }
            }
        }
    }

    let (Ok(client_r), Ok(server_r)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    let c2s_stop = Arc::clone(stop);
    let s2c_stop = Arc::clone(stop);
    let server_w = server;
    let client_w = client;
    let c2s = std::thread::spawn(move || pump(client_r, server_w, c2s_plan, &c2s_stop));
    let s2c = std::thread::spawn(move || pump(server_r, client_w, s2c_plan, &s2c_stop));
    let _ = c2s.join();
    let _ = s2c.join();
}

/// Copy bytes `src → dst` under a [`PumpPlan`], polling `stop`.
fn pump(mut src: TcpStream, mut dst: TcpStream, plan: PumpPlan, stop: &Arc<AtomicBool>) {
    let _ = src.set_read_timeout(Some(PUMP_POLL));
    let mut forwarded: u64 = 0;
    let mut chunks: u32 = 0;
    let mut buf = [0u8; 8 << 10];
    loop {
        if stop.load(Ordering::SeqCst) {
            let _ = dst.shutdown(Shutdown::Both);
            return;
        }
        if forwarded >= plan.budget {
            match plan.exhausted {
                Exhausted::Close => {
                    // Both halves: a mid-frame disconnect, not a
                    // half-close the peer could ignore.
                    let _ = dst.shutdown(Shutdown::Both);
                    let _ = src.shutdown(Shutdown::Both);
                    return;
                }
                Exhausted::Stall => {
                    // Hold both sockets open, forward nothing: the
                    // peer's deadline (or our stop flag) ends this.
                    std::thread::sleep(PUMP_POLL);
                    continue;
                }
            }
        }
        // Never read past the budget: the bytes beyond it must stay
        // unforwarded, not buffered here.
        let want = (plan.budget - forwarded).min(buf.len() as u64) as usize;
        match src.read(&mut buf[..want]) {
            Ok(0) => {
                let _ = dst.shutdown(Shutdown::Write);
                return;
            }
            Ok(n) => {
                if let Some(delay) = plan.delay {
                    if chunks < plan.delay_chunks {
                        std::thread::sleep(delay);
                    }
                }
                chunks += 1;
                if dst.write_all(&buf[..n]).is_err() {
                    let _ = src.shutdown(Shutdown::Both);
                    return;
                }
                forwarded += n as u64;
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => {
                let _ = dst.shutdown(Shutdown::Both);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_resolution_is_deterministic_and_in_range() {
        let span = Span::new(10, 50);
        for draw in [0u64, 1, 7, u64::MAX] {
            let a = span.resolve(draw);
            assert_eq!(a, span.resolve(draw));
            assert!((10..50).contains(&a), "draw={draw} → {a}");
        }
        // Different seeds reach different cut points somewhere.
        let hits: std::collections::HashSet<u64> = (0..64)
            .map(|i| span.resolve(splitmix_seed(99, i)))
            .collect();
        assert!(hits.len() > 1);
    }

    #[test]
    #[should_panic(expected = "empty span")]
    fn empty_span_rejected() {
        let _ = Span::new(5, 5);
    }
}
