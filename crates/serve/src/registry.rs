//! The plan registry: named, versioned repair plans held hot in memory.
//!
//! `otrepaird` serves repairs against plans loaded from their JSON
//! artifacts (the same files `otrepair design --out` writes). Each
//! entry is keyed `name@version`; versions are **immutable** — loading
//! a second plan under an occupied key is a
//! [`RegistryError::VersionCollision`], never a silent replace, so a
//! client that pinned `adult@3` can trust the bytes it gets back
//! forever. Replacement is explicit: evict, then load.
//!
//! Plans pass the same structural validation the offline CLI applies
//! ([`RepairPlan::from_json`] / [`JointRepairPlan::from_json`], which
//! recompile derived samplers and reject malformed artifacts) before
//! they become visible to any client.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;
use std::sync::Mutex;

use otr_core::{JointRepairPlan, RepairPlan};
use otr_data::{ColumnarDataset, Dataset};

use crate::protocol::{ErrorCode, PlanInfo, PlanKind};

/// Maximum registry-name length in bytes.
pub const MAX_NAME_LEN: usize = 64;

/// A registry failure, mapped onto wire [`ErrorCode`]s by
/// [`RegistryError::code`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The name violates `[A-Za-z0-9._-]{1,64}`.
    InvalidName(String),
    /// Plans are loaded at explicit versions ≥ 1 (`0` is the "latest"
    /// selector on lookups, never a storable version).
    InvalidVersion,
    /// The JSON artifact failed structural validation.
    Invalid(String),
    /// `name@version` is already registered.
    VersionCollision { name: String, version: u32 },
    /// No plan under `name@version`.
    NotFound { name: String, version: u32 },
    /// A registry-directory file could not be read.
    Io(String),
}

impl RegistryError {
    /// The wire error code this failure reports as.
    pub fn code(&self) -> ErrorCode {
        match self {
            Self::VersionCollision { .. } => ErrorCode::VersionCollision,
            Self::NotFound { .. } => ErrorCode::UnknownPlan,
            _ => ErrorCode::PlanInvalid,
        }
    }
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidName(name) => write!(
                f,
                "invalid plan name {name:?}: need 1..={MAX_NAME_LEN} bytes of [A-Za-z0-9._-]"
            ),
            Self::InvalidVersion => write!(f, "plan versions start at 1 (0 selects the latest)"),
            Self::Invalid(msg) => write!(f, "plan failed validation: {msg}"),
            Self::VersionCollision { name, version } => write!(
                f,
                "{name}@{version} is already registered (versions are immutable; evict first)"
            ),
            Self::NotFound { name, version } => {
                if *version == 0 {
                    write!(f, "no plan named {name}")
                } else {
                    write!(f, "no plan {name}@{version}")
                }
            }
            Self::Io(msg) => write!(f, "registry directory: {msg}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// A validated, execution-ready plan of either kind.
#[derive(Debug)]
pub enum RegisteredPlan {
    Scalar(RepairPlan),
    Joint(JointRepairPlan),
}

impl RegisteredPlan {
    /// Which kind this entry holds.
    pub fn kind(&self) -> PlanKind {
        match self {
            Self::Scalar(_) => PlanKind::Scalar,
            Self::Joint(_) => PlanKind::Joint,
        }
    }

    /// Feature dimension the plan repairs.
    pub fn dim(&self) -> usize {
        match self {
            Self::Scalar(p) => p.dim,
            Self::Joint(p) => p.dims(),
        }
    }

    /// Support resolution `nQ` (per dimension for joint plans).
    pub fn n_q(&self) -> usize {
        match self {
            Self::Scalar(p) => p.config.n_q,
            Self::Joint(p) => p.n_q(),
        }
    }

    /// Repair `shard` as if its rows sat at absolute archive indices
    /// `row_offset ..`, returning the repaired feature columns and the
    /// out-of-range count (0 for joint plans, which do not track it).
    ///
    /// # Errors
    /// Rejects dimension mismatches.
    pub fn repair_shard(
        &self,
        shard: &ColumnarDataset,
        seed: u64,
        row_offset: u64,
    ) -> Result<(Vec<Vec<f64>>, u64), String> {
        match self {
            Self::Scalar(plan) => {
                let (repaired, oob) = plan
                    .repair_columnar_shard(shard, seed, row_offset)
                    .map_err(|e| e.to_string())?;
                Ok((repaired.feature_columns().to_vec(), oob))
            }
            Self::Joint(plan) => {
                let repaired = plan
                    .repair_dataset_shard(&shard.to_dataset(), seed, row_offset)
                    .map_err(|e| e.to_string())?;
                Ok((
                    ColumnarDataset::from_dataset(&repaired)
                        .feature_columns()
                        .to_vec(),
                    0,
                ))
            }
        }
    }

    /// Repair a whole archive offline-style (`row_offset = 0`, no
    /// sharding) — the reference the sharded path must match.
    ///
    /// # Errors
    /// Rejects dimension mismatches.
    pub fn repair_whole(
        &self,
        archive: &ColumnarDataset,
        seed: u64,
    ) -> Result<(Vec<Vec<f64>>, u64), String> {
        self.repair_shard(archive, seed, 0)
    }

    /// Offline repair of a row-major dataset — what `otrepair apply`
    /// runs, exposed so tests can pin served-vs-offline byte-identity.
    ///
    /// # Errors
    /// Rejects dimension mismatches.
    pub fn repair_dataset(&self, data: &Dataset, seed: u64) -> Result<Dataset, String> {
        match self {
            Self::Scalar(plan) => plan
                .repair_dataset_par(data, seed)
                .map_err(|e| e.to_string()),
            Self::Joint(plan) => plan
                .repair_dataset_par(data, seed)
                .map_err(|e| e.to_string()),
        }
    }

    /// Serialize back to the same JSON artifact schema the offline CLI
    /// writes, so a hot-swapped version persisted to the plans
    /// directory round-trips through [`PlanRegistry::load_dir`].
    ///
    /// # Errors
    /// Serialization failures only.
    pub fn to_json(&self) -> Result<String, String> {
        match self {
            Self::Scalar(plan) => plan.to_json().map_err(|e| e.to_string()),
            Self::Joint(plan) => plan.to_json().map_err(|e| e.to_string()),
        }
    }
}

/// Thread-safe map of `name@version` → validated plan.
#[derive(Debug)]
pub struct PlanRegistry {
    /// `BTreeMap` so listings come out name-then-version ordered and
    /// "latest version of `name`" is the last key of the name's range.
    plans: Mutex<BTreeMap<(String, u32), Arc<RegisteredPlan>>>,
    /// Worker threads each *plan* runs with. The server parallelizes
    /// across shards, so it registers plans with `threads = 1` to keep
    /// the two levels from multiplying; standalone users may want auto.
    plan_threads: usize,
    /// Columnar batch-rows policy applied to loaded scalar plans
    /// (`None` = auto / `OTR_BATCH_ROWS`).
    batch_rows: Option<usize>,
}

impl PlanRegistry {
    /// An empty registry whose loaded plans run `plan_threads` threads
    /// and `batch_rows`-row columnar batches (execution policy only —
    /// never affects repaired bytes).
    pub fn new(plan_threads: usize, batch_rows: Option<usize>) -> Self {
        Self {
            plans: Mutex::new(BTreeMap::new()),
            plan_threads,
            batch_rows,
        }
    }

    /// Lock the plan map, recovering from poisoning. The map is only
    /// mutated by `BTreeMap::insert`/`remove`, which either complete or
    /// leave the map untouched — a panic mid-critical-section cannot
    /// leave a half-written entry — so the registry outlives a poisoned
    /// request (the server isolates such panics per connection and must
    /// keep serving everyone else).
    fn plans(&self) -> std::sync::MutexGuard<'_, BTreeMap<(String, u32), Arc<RegisteredPlan>>> {
        self.plans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Enforce the registry name grammar: 1–64 bytes of
    /// `[A-Za-z0-9._-]` (safe in file names, URLs, and logs).
    ///
    /// # Errors
    /// [`RegistryError::InvalidName`] otherwise.
    pub fn validate_name(name: &str) -> Result<(), RegistryError> {
        let ok = !name.is_empty()
            && name.len() <= MAX_NAME_LEN
            && name
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'.' || b == b'_' || b == b'-');
        if ok {
            Ok(())
        } else {
            Err(RegistryError::InvalidName(name.into()))
        }
    }

    /// Validate `json` as a plan of `kind` and register it under
    /// `name@version`, returning its listing entry.
    ///
    /// # Errors
    /// Bad name/version, artifacts that fail structural validation, and
    /// version collisions; on any error the registry is unchanged.
    pub fn load(
        &self,
        name: &str,
        version: u32,
        kind: PlanKind,
        json: &str,
    ) -> Result<PlanInfo, RegistryError> {
        Self::validate_name(name)?;
        if version == 0 {
            return Err(RegistryError::InvalidVersion);
        }
        let plan = match kind {
            PlanKind::Scalar => {
                let mut plan = RepairPlan::from_json(json)
                    .map_err(|e| RegistryError::Invalid(e.to_string()))?;
                plan.config.threads = self.plan_threads;
                plan.config.batch_rows = self.batch_rows;
                RegisteredPlan::Scalar(plan)
            }
            PlanKind::Joint => {
                let mut plan = JointRepairPlan::from_json(json)
                    .map_err(|e| RegistryError::Invalid(e.to_string()))?;
                plan.set_threads(self.plan_threads);
                RegisteredPlan::Joint(plan)
            }
        };
        let info = PlanInfo {
            name: name.into(),
            version,
            kind: plan.kind(),
            dim: plan.dim(),
            n_q: plan.n_q(),
        };
        let mut plans = self.plans();
        let key = (name.to_string(), version);
        if plans.contains_key(&key) {
            return Err(RegistryError::VersionCollision {
                name: name.into(),
                version,
            });
        }
        plans.insert(key, Arc::new(plan));
        Ok(info)
    }

    /// Fetch `name@version`; `version = 0` selects the highest loaded
    /// version of `name`.
    ///
    /// # Errors
    /// [`RegistryError::NotFound`] when absent.
    pub fn get(&self, name: &str, version: u32) -> Result<Arc<RegisteredPlan>, RegistryError> {
        let plans = self.plans();
        let found = if version == 0 {
            plans
                .range((name.to_string(), 1)..=(name.to_string(), u32::MAX))
                .next_back()
                .map(|(_, plan)| plan)
        } else {
            plans.get(&(name.to_string(), version))
        };
        found.cloned().ok_or_else(|| RegistryError::NotFound {
            name: name.into(),
            version,
        })
    }

    /// Fetch the highest loaded version of `name` together with its
    /// version number — what a drift watch re-designs from and what a
    /// hot swap increments past.
    ///
    /// # Errors
    /// [`RegistryError::NotFound`] when no version of `name` is loaded.
    pub fn latest(&self, name: &str) -> Result<(u32, Arc<RegisteredPlan>), RegistryError> {
        self.plans()
            .range((name.to_string(), 1)..=(name.to_string(), u32::MAX))
            .next_back()
            .map(|((_, version), plan)| (*version, plan.clone()))
            .ok_or_else(|| RegistryError::NotFound {
                name: name.into(),
                version: 0,
            })
    }

    /// Register an already-validated in-memory plan under
    /// `name@version` — the hot-swap path, where the plan was just
    /// designed in-process rather than parsed from JSON.
    ///
    /// # Errors
    /// Bad name/version and version collisions; on error the registry
    /// is unchanged and `plan` is dropped.
    pub fn register(
        &self,
        name: &str,
        version: u32,
        plan: Arc<RegisteredPlan>,
    ) -> Result<PlanInfo, RegistryError> {
        Self::validate_name(name)?;
        if version == 0 {
            return Err(RegistryError::InvalidVersion);
        }
        let info = PlanInfo {
            name: name.into(),
            version,
            kind: plan.kind(),
            dim: plan.dim(),
            n_q: plan.n_q(),
        };
        let mut plans = self.plans();
        let key = (name.to_string(), version);
        if plans.contains_key(&key) {
            return Err(RegistryError::VersionCollision {
                name: name.into(),
                version,
            });
        }
        plans.insert(key, plan);
        Ok(info)
    }

    /// All registered plans, ordered by name then version.
    pub fn list(&self) -> Vec<PlanInfo> {
        self.plans()
            .iter()
            .map(|((name, version), plan)| PlanInfo {
                name: name.clone(),
                version: *version,
                kind: plan.kind(),
                dim: plan.dim(),
                n_q: plan.n_q(),
            })
            .collect()
    }

    /// Number of registered plans.
    pub fn len(&self) -> usize {
        self.plans().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove `name@version` (exact; eviction never guesses "latest").
    /// In-flight repairs holding the [`Arc`] finish unaffected.
    ///
    /// # Errors
    /// [`RegistryError::NotFound`] when absent.
    pub fn evict(&self, name: &str, version: u32) -> Result<(), RegistryError> {
        if version == 0 {
            return Err(RegistryError::InvalidVersion);
        }
        self.plans()
            .remove(&(name.to_string(), version))
            .map(|_| ())
            .ok_or_else(|| RegistryError::NotFound {
                name: name.into(),
                version,
            })
    }

    /// Preload every `*.json` artifact in `dir`. File names map to
    /// registry keys: `census.json` loads as `census@1`,
    /// `census@3.json` as `census@3`. The plan kind is sniffed by
    /// validation order — scalar first, joint if that fails — which is
    /// unambiguous because the two JSON schemas share no required
    /// top-level shape. Returns the loaded entries in directory-sorted
    /// order.
    ///
    /// # Errors
    /// Unreadable directory/files, unparsable stems, artifacts that
    /// validate as neither kind, and collisions. Entries loaded before
    /// the failing file stay registered.
    pub fn load_dir(&self, dir: &Path) -> Result<Vec<PlanInfo>, RegistryError> {
        let mut files: Vec<_> = std::fs::read_dir(dir)
            .map_err(|e| RegistryError::Io(format!("{}: {e}", dir.display())))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|ext| ext == "json"))
            .collect();
        files.sort();
        let mut loaded = Vec::with_capacity(files.len());
        for path in files {
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .ok_or_else(|| RegistryError::Io(format!("{}: non-UTF-8 name", path.display())))?;
            let (name, version) = match stem.split_once('@') {
                None => (stem, 1),
                Some((name, v)) => {
                    let version: u32 = v.parse().map_err(|_| {
                        RegistryError::Invalid(format!(
                            "{}: version {v:?} in file name is not a u32",
                            path.display()
                        ))
                    })?;
                    (name, version)
                }
            };
            let json = std::fs::read_to_string(&path)
                .map_err(|e| RegistryError::Io(format!("{}: {e}", path.display())))?;
            let info = self
                .load(name, version, PlanKind::Scalar, &json)
                .or_else(|scalar_err| match scalar_err {
                    // Only fall through on parse failures: collisions and
                    // bad names are the same either way.
                    RegistryError::Invalid(_) => self.load(name, version, PlanKind::Joint, &json),
                    other => Err(other),
                })
                .map_err(|e| RegistryError::Invalid(format!("{}: {e}", path.display())))?;
            loaded.push(info);
        }
        Ok(loaded)
    }
}

/// Persist a plan artifact into the registry directory under the
/// `name@version.json` naming [`PlanRegistry::load_dir`] reads back,
/// via tmp-file + atomic rename (the dotted `.tmp` name fails the
/// `.json` extension filter, so a crashed write is never loaded).
///
/// Version 1 lands on a bare `name.json` when the operator already
/// seeded one (that file *is* `name@1` to `load_dir`; writing a
/// sibling `name@1.json` would collide on restart).
///
/// # Errors
/// Filesystem failures, as [`RegistryError::Io`].
pub fn persist_plan(
    dir: &Path,
    name: &str,
    version: u32,
    json: &str,
) -> Result<std::path::PathBuf, RegistryError> {
    PlanRegistry::validate_name(name)?;
    if version == 0 {
        return Err(RegistryError::InvalidVersion);
    }
    let bare = dir.join(format!("{name}.json"));
    let dest = if version == 1 && bare.exists() {
        bare
    } else {
        dir.join(format!("{name}@{version}.json"))
    };
    let tmp = dir.join(format!(".{name}@{version}.json.tmp"));
    let io = |e: std::io::Error, p: &Path| RegistryError::Io(format!("{}: {e}", p.display()));
    std::fs::write(&tmp, json).map_err(|e| io(e, &tmp))?;
    std::fs::rename(&tmp, &dest).map_err(|e| io(e, &dest))?;
    Ok(dest)
}

/// Best-effort removal of a persisted plan artifact (both the
/// versioned name and, for version 1, the bare `name.json` alias).
/// Used on evict so a restart does not resurrect the plan; failures
/// are ignored because the in-memory eviction already succeeded.
pub fn unpersist_plan(dir: &Path, name: &str, version: u32) {
    let _ = std::fs::remove_file(dir.join(format!("{name}@{version}.json")));
    if version == 1 {
        let _ = std::fs::remove_file(dir.join(format!("{name}.json")));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otr_core::{RepairConfig, RepairPlanner};
    use otr_data::SimulationSpec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn scalar_plan_json() -> String {
        let mut rng = StdRng::seed_from_u64(41);
        let research = SimulationSpec::paper_defaults()
            .sample_dataset(300, &mut rng)
            .unwrap();
        RepairPlanner::new(RepairConfig::with_n_q(16))
            .design(&research)
            .unwrap()
            .to_json()
            .unwrap()
    }

    #[test]
    fn name_grammar() {
        for good in ["a", "adult-2024", "census.v2_final", &"x".repeat(64)] {
            assert!(PlanRegistry::validate_name(good).is_ok(), "{good:?}");
        }
        for bad in ["", "a b", "sp√©cial", "a/b", &"x".repeat(65)] {
            assert!(PlanRegistry::validate_name(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn load_get_list_evict_lifecycle() {
        let reg = PlanRegistry::new(1, None);
        let json = scalar_plan_json();
        let info = reg.load("census", 1, PlanKind::Scalar, &json).unwrap();
        assert_eq!((info.kind, info.dim, info.n_q), (PlanKind::Scalar, 2, 16));
        reg.load("census", 3, PlanKind::Scalar, &json).unwrap();

        // Explicit and latest (0) lookups.
        assert!(reg.get("census", 1).is_ok());
        assert!(reg.get("census", 3).is_ok());
        assert!(reg.get("census", 0).is_ok());
        assert!(matches!(
            reg.get("census", 2),
            Err(RegistryError::NotFound { .. })
        ));
        assert!(reg.get("nope", 0).is_err());

        let listed = reg.list();
        assert_eq!(
            listed
                .iter()
                .map(|p| (p.name.as_str(), p.version))
                .collect::<Vec<_>>(),
            vec![("census", 1), ("census", 3)]
        );

        reg.evict("census", 3).unwrap();
        assert_eq!(reg.len(), 1);
        assert!(matches!(
            reg.evict("census", 3),
            Err(RegistryError::NotFound { .. })
        ));
    }

    #[test]
    fn versions_are_immutable() {
        let reg = PlanRegistry::new(1, None);
        let json = scalar_plan_json();
        reg.load("p", 2, PlanKind::Scalar, &json).unwrap();
        let err = reg.load("p", 2, PlanKind::Scalar, &json).unwrap_err();
        assert!(matches!(err, RegistryError::VersionCollision { .. }));
        assert_eq!(err.code(), ErrorCode::VersionCollision);
        // Evict-then-load is the sanctioned replacement path.
        reg.evict("p", 2).unwrap();
        reg.load("p", 2, PlanKind::Scalar, &json).unwrap();
    }

    #[test]
    fn version_zero_latest_tracks_the_registry() {
        let reg = PlanRegistry::new(1, None);
        let json = scalar_plan_json();
        for v in [5, 1, 9] {
            reg.load("p", v, PlanKind::Scalar, &json).unwrap();
        }
        // Latest is the max loaded version, independent of load order...
        assert_eq!(reg.list().last().unwrap().version, 9);
        reg.evict("p", 9).unwrap();
        // ...and follows evictions.
        let latest = reg.get("p", 0).unwrap();
        assert_eq!(latest.n_q(), 16);
        assert_eq!(reg.list().last().unwrap().version, 5);
    }

    #[test]
    fn malformed_and_misdeclared_artifacts_rejected() {
        let reg = PlanRegistry::new(1, None);
        for bad in ["", "not json", "{\"dim\": 2}", "[1, 2, 3]"] {
            let err = reg.load("p", 1, PlanKind::Scalar, bad).unwrap_err();
            assert!(matches!(err, RegistryError::Invalid(_)), "{bad:?}: {err}");
            assert_eq!(err.code(), ErrorCode::PlanInvalid);
        }
        // A valid scalar artifact declared as joint is still invalid.
        let json = scalar_plan_json();
        assert!(reg.load("p", 1, PlanKind::Joint, &json).is_err());
        // Version 0 is a selector, not a loadable version.
        assert!(matches!(
            reg.load("p", 0, PlanKind::Scalar, &json),
            Err(RegistryError::InvalidVersion)
        ));
        assert!(reg.is_empty(), "failed loads must not register anything");
    }

    #[test]
    fn latest_and_register_drive_the_hot_swap_path() {
        let reg = PlanRegistry::new(1, None);
        assert!(matches!(
            reg.latest("census"),
            Err(RegistryError::NotFound { .. })
        ));
        let json = scalar_plan_json();
        reg.load("census", 1, PlanKind::Scalar, &json).unwrap();
        let (v, plan) = reg.latest("census").unwrap();
        assert_eq!(v, 1);

        // Re-registering the same Arc as the next version succeeds and
        // becomes the new latest; colliding versions are rejected.
        let info = reg.register("census", 2, plan.clone()).unwrap();
        assert_eq!((info.version, info.kind), (2, PlanKind::Scalar));
        assert_eq!(reg.latest("census").unwrap().0, 2);
        assert!(matches!(
            reg.register("census", 2, plan.clone()),
            Err(RegistryError::VersionCollision { .. })
        ));
        assert!(reg.register("census", 0, plan.clone()).is_err());
        assert!(reg.register("bad name", 3, plan).is_err());
    }

    #[test]
    fn persisted_artifacts_round_trip_through_load_dir() {
        let dir = std::env::temp_dir().join(format!("otr_persist_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let json = scalar_plan_json();

        // Fresh directory: version 1 gets the versioned name.
        let p1 = persist_plan(&dir, "census", 1, &json).unwrap();
        assert_eq!(p1.file_name().unwrap(), "census@1.json");
        let p2 = persist_plan(&dir, "census", 2, &json).unwrap();
        assert_eq!(p2.file_name().unwrap(), "census@2.json");
        let reg = PlanRegistry::new(1, None);
        let loaded = reg.load_dir(&dir).unwrap();
        assert_eq!(
            loaded.iter().map(|p| p.version).collect::<Vec<_>>(),
            vec![1, 2]
        );

        // Serialized registry plans re-persist through to_json.
        let (_, plan) = reg.latest("census").unwrap();
        let rejson = plan.to_json().unwrap();
        persist_plan(&dir, "census", 3, &rejson).unwrap();
        assert!(PlanRegistry::new(1, None).load_dir(&dir).is_ok());

        // Operator-seeded bare name.json: persisting version 1 lands on
        // it instead of creating a colliding sibling.
        let dir2 = dir.join("seeded");
        std::fs::create_dir_all(&dir2).unwrap();
        std::fs::write(dir2.join("census.json"), "stale").unwrap();
        let p = persist_plan(&dir2, "census", 1, &json).unwrap();
        assert_eq!(p.file_name().unwrap(), "census.json");
        assert_eq!(std::fs::read_to_string(&p).unwrap(), json);
        PlanRegistry::new(1, None).load_dir(&dir2).unwrap();

        // No stray tmp files survive, and unpersist clears both names.
        assert!(!std::fs::read_dir(&dir).unwrap().any(|e| e
            .unwrap()
            .file_name()
            .to_string_lossy()
            .ends_with(".tmp")));
        unpersist_plan(&dir2, "census", 1);
        assert!(!dir2.join("census.json").exists());
        for v in 1..=3 {
            unpersist_plan(&dir, "census", v);
        }
        assert!(PlanRegistry::new(1, None)
            .load_dir(&dir)
            .unwrap()
            .is_empty());

        assert!(persist_plan(&dir, "census", 0, &json).is_err());
        assert!(persist_plan(&dir, "bad name", 1, &json).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_dir_maps_file_names_to_versions() {
        let dir = std::env::temp_dir().join(format!("otr_registry_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let json = scalar_plan_json();
        std::fs::write(dir.join("census.json"), &json).unwrap();
        std::fs::write(dir.join("census@4.json"), &json).unwrap();
        std::fs::write(dir.join("notes.txt"), "ignored").unwrap();

        let reg = PlanRegistry::new(1, None);
        let loaded = reg.load_dir(&dir).unwrap();
        assert_eq!(
            loaded
                .iter()
                .map(|p| (p.name.as_str(), p.version))
                .collect::<Vec<_>>(),
            vec![("census", 1), ("census", 4)]
        );

        // A malformed artifact fails the preload loudly.
        std::fs::write(dir.join("broken@2.json"), "{oops").unwrap();
        let reg2 = PlanRegistry::new(1, None);
        assert!(matches!(
            reg2.load_dir(&dir),
            Err(RegistryError::Invalid(_))
        ));
        // An unparsable version suffix too.
        std::fs::remove_file(dir.join("broken@2.json")).unwrap();
        std::fs::write(dir.join("census@nine.json"), &json).unwrap();
        assert!(PlanRegistry::new(1, None).load_dir(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
