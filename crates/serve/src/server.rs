//! The `otrepaird` server: a TCP accept loop, a shared
//! [`PlanRegistry`], and the sharded repair executor.
//!
//! # Determinism under sharding
//!
//! Every `Repair` request is split into `shards` contiguous row chunks
//! (the same `base + (c < rem)` bounds `otr-par` uses for its own
//! chunking), each repaired through
//! [`RegisteredPlan::repair_shard`](crate::registry::RegisteredPlan::repair_shard)
//! with its **start row as the RNG offset**, and reassembled in
//! shard-index order. Because row `i`
//! always draws from `splitmix_seed(seed, i)` no matter which shard it
//! lands in, the response bytes are a pure function of
//! `(plan, seed, archive)` — shard count, worker threads, and client
//! interleaving are unobservable. `docs/determinism.md` derives this
//! contract; `tests/serve.rs` pins it against the offline CLI.
//!
//! # Connection model
//!
//! One thread per connection, frames handled strictly in order per
//! connection (so a client's own requests never race each other),
//! connections independent. Reads poll a shared stop flag every
//! `POLL_INTERVAL` so [`ServerHandle::shutdown`] interrupts idle
//! connections promptly; [`Server::run`]'s accept loop is woken by a
//! self-connection.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use otr_data::ColumnarDataset;
use otr_par::{thread_count, try_par_map_indexed};

use crate::protocol::{
    decode_header, write_frame, ErrorCode, Request, Response, ServerInfo, HEADER_LEN,
    PROTOCOL_VERSION,
};
use crate::registry::PlanRegistry;

/// How often blocked reads wake to check the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(200);

/// Deployment knobs for [`Server::bind`]. Execution policy only: no
/// field affects repaired bytes (the serving determinism contract).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 lets the OS pick — read the
    /// real address back from [`Server::local_addr`]).
    pub bind: String,
    /// Worker threads for sharded repair (`0` = auto: `OTR_THREADS` if
    /// set, else available parallelism).
    pub threads: usize,
    /// Contiguous row shards per repair request (`0` = auto: the
    /// resolved thread count).
    pub shards: usize,
    /// Row-batch size of the columnar kernels inside each shard
    /// (`None` = auto: `OTR_BATCH_ROWS` if set, else the library
    /// default).
    pub batch_rows: Option<usize>,
    /// Directory of plan artifacts to preload at startup
    /// (`name.json` → `name@1`, `name@v.json` → `name@v`).
    pub plans_dir: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            bind: "127.0.0.1:7878".into(),
            threads: 0,
            shards: 0,
            batch_rows: None,
            plans_dir: None,
        }
    }
}

/// Counters and the stop flag, shared by every connection thread.
#[derive(Debug, Default)]
struct Shared {
    stop: AtomicBool,
    requests: AtomicU64,
    rows_repaired: AtomicU64,
}

/// A bound (but not yet serving) `otrepaird` instance.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    registry: Arc<PlanRegistry>,
    shared: Arc<Shared>,
    threads: usize,
    shards: usize,
}

/// A remote control for a running [`Server`]: stats and shutdown.
/// Cheap to clone; safe to use from any thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Ask the server to stop: in-flight frames finish, idle
    /// connections close within one read-poll interval (200 ms), and
    /// [`Server::run`] returns. Idempotent.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // The accept loop may be parked in accept(); a throwaway
        // connection wakes it to observe the flag.
        let _ = TcpStream::connect(self.addr);
    }

    /// Requests handled so far (all message types).
    pub fn requests(&self) -> u64 {
        self.shared.requests.load(Ordering::Relaxed)
    }

    /// Archive rows repaired so far.
    pub fn rows_repaired(&self) -> u64 {
        self.shared.rows_repaired.load(Ordering::Relaxed)
    }
}

impl Server {
    /// Bind the listen socket, resolve the thread/shard policy, and
    /// preload `plans_dir` (if configured). No connections are accepted
    /// until [`Server::run`].
    ///
    /// # Errors
    /// Bind failures and unloadable preload directories.
    pub fn bind(config: &ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.bind)?;
        let threads = thread_count(config.threads);
        let shards = if config.shards == 0 {
            threads
        } else {
            config.shards
        };
        // Shards run concurrently on the server's own pool, so each
        // registered plan executes single-threaded: two multiplying
        // levels of parallelism would oversubscribe the machine.
        let registry = Arc::new(PlanRegistry::new(1, config.batch_rows));
        if let Some(dir) = &config.plans_dir {
            registry
                .load_dir(dir)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        }
        Ok(Self {
            listener,
            registry,
            shared: Arc::new(Shared::default()),
            threads,
            shards,
        })
    }

    /// The bound address (the real port when `bind` asked for 0).
    ///
    /// # Errors
    /// Propagates `local_addr` failures.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The server's plan registry (shared with all connections).
    pub fn registry(&self) -> &Arc<PlanRegistry> {
        &self.registry
    }

    /// A [`ServerHandle`] for stats and shutdown from other threads.
    ///
    /// # Errors
    /// Propagates `local_addr` failures.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.local_addr()?,
            shared: Arc::clone(&self.shared),
        })
    }

    /// Accept and serve connections until [`ServerHandle::shutdown`].
    /// Blocks the calling thread; spawn it if you need to keep going
    /// (as `tests/serve.rs` and the CLI's `--port-file` flow do).
    ///
    /// # Errors
    /// Fatal accept-loop failures only; per-connection errors are
    /// answered on the wire (or logged to stderr) and do not stop the
    /// server.
    pub fn run(self) -> std::io::Result<()> {
        let mut workers = Vec::new();
        for conn in self.listener.incoming() {
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("otrepaird: accept failed: {e}");
                    continue;
                }
            };
            let ctx = ConnCtx {
                registry: Arc::clone(&self.registry),
                shared: Arc::clone(&self.shared),
                threads: self.threads,
                shards: self.shards,
            };
            workers.push(std::thread::spawn(move || {
                if let Err(e) = handle_conn(stream, &ctx) {
                    eprintln!("otrepaird: connection error: {e}");
                }
            }));
            // Reap finished connection threads so a long-lived daemon
            // doesn't accumulate handles.
            workers.retain(|h| !h.is_finished());
        }
        for h in workers {
            let _ = h.join();
        }
        Ok(())
    }
}

/// Everything one connection thread needs.
struct ConnCtx {
    registry: Arc<PlanRegistry>,
    shared: Arc<Shared>,
    threads: usize,
    shards: usize,
}

/// Fill `buf` from the stream, polling the stop flag between timeouts.
///
/// Returns `Ok(false)` on a clean end — EOF or shutdown observed
/// *between* frames (`mid_frame = false`) — and errors on EOF or
/// shutdown with a frame half-read, where silently dropping bytes
/// would corrupt the session.
fn read_full(stream: &mut TcpStream, buf: &mut [u8], ctx: &ConnCtx) -> std::io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        if ctx.shared.stop.load(Ordering::SeqCst) {
            if filled == 0 {
                return Ok(false);
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::Interrupted,
                "server shutting down mid-frame",
            ));
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Serve one connection: read frames in order, answer each.
fn handle_conn(mut stream: TcpStream, ctx: &ConnCtx) -> std::io::Result<()> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_nodelay(true)?;
    loop {
        let mut header = [0u8; HEADER_LEN];
        if !read_full(&mut stream, &mut header, ctx)? {
            return Ok(()); // clean EOF or shutdown between frames
        }
        let (msg_type, payload_len) = match decode_header(&header) {
            Ok(parsed) => parsed,
            Err(err) => {
                ctx.shared.requests.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Error {
                    code: err.code().as_u16(),
                    message: err.message().into(),
                };
                let (t, p) = resp.encode();
                write_frame(&mut stream, t, &p)?;
                if err.is_fatal() {
                    // Framing is gone; resynchronization is impossible.
                    return Ok(());
                }
                // UnsupportedVersion: framing is intact, so skip the
                // payload and keep serving this connection.
                let mut skip = vec![0u8; decode_payload_len(&header)];
                if !read_full(&mut stream, &mut skip, ctx)? {
                    return Ok(());
                }
                continue;
            }
        };
        let mut payload = vec![0u8; payload_len];
        if payload_len > 0 && !read_full(&mut stream, &mut payload, ctx)? {
            return Ok(());
        }
        ctx.shared.requests.fetch_add(1, Ordering::Relaxed);
        let resp = match Request::decode(msg_type, &payload) {
            Ok(req) => dispatch(req, ctx),
            Err(err) => Response::Error {
                code: err.code().as_u16(),
                message: err.message().into(),
            },
        };
        let (t, p) = resp.encode();
        write_frame(&mut stream, t, &p)?;
    }
}

/// The payload length field alone (valid even when the version byte is
/// not): used to skip past frames we answered with an error.
fn decode_payload_len(h: &[u8; HEADER_LEN]) -> usize {
    u32::from_be_bytes([h[8], h[9], h[10], h[11]]) as usize
}

/// Execute one decoded request against the registry.
fn dispatch(req: Request, ctx: &ConnCtx) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::LoadPlan {
            kind,
            name,
            version,
            json,
        } => match ctx.registry.load(&name, version, kind, &json) {
            Ok(_) => Response::PlanLoaded,
            Err(e) => Response::Error {
                code: e.code().as_u16(),
                message: e.to_string(),
            },
        },
        Request::ListPlans => Response::PlanList(ctx.registry.list()),
        Request::EvictPlan { name, version } => match ctx.registry.evict(&name, version) {
            Ok(()) => Response::PlanEvicted,
            Err(e) => Response::Error {
                code: e.code().as_u16(),
                message: e.to_string(),
            },
        },
        Request::Repair {
            name,
            version,
            seed,
            archive,
        } => match ctx.registry.get(&name, version) {
            Ok(plan) => match repair_sharded(plan.as_ref(), &archive, seed, ctx) {
                Ok((out_of_range, columns)) => {
                    ctx.shared
                        .rows_repaired
                        .fetch_add(archive.len() as u64, Ordering::Relaxed);
                    Response::Repaired {
                        out_of_range,
                        columns,
                    }
                }
                Err(msg) => Response::Error {
                    code: ErrorCode::RepairFailed.as_u16(),
                    message: msg,
                },
            },
            Err(e) => Response::Error {
                code: e.code().as_u16(),
                message: e.to_string(),
            },
        },
        Request::Info => Response::Info(ServerInfo {
            protocol_version: PROTOCOL_VERSION,
            plans: ctx.registry.len() as u32,
            requests: ctx.shared.requests.load(Ordering::Relaxed),
            rows_repaired: ctx.shared.rows_repaired.load(Ordering::Relaxed),
            shards: ctx.shards as u32,
            threads: ctx.threads as u32,
        }),
    }
}

/// Start row of shard `c` when `n` rows split into `chunks` contiguous
/// shards (first `n % chunks` shards get one extra row — the same
/// layout `otr-par` itself chunks by).
fn shard_start(n: usize, chunks: usize, c: usize) -> usize {
    let base = n / chunks;
    let rem = n % chunks;
    c * base + c.min(rem)
}

/// Shard the archive, repair every shard at its absolute row offset,
/// and reassemble in index order.
fn repair_sharded(
    plan: &crate::registry::RegisteredPlan,
    archive: &ColumnarDataset,
    seed: u64,
    ctx: &ConnCtx,
) -> Result<(u64, Vec<Vec<f64>>), String> {
    let n = archive.len();
    let shards = ctx.shards.clamp(1, n.max(1));
    let parts = try_par_map_indexed(shards, ctx.threads, |c| {
        let (start, end) = (shard_start(n, shards, c), shard_start(n, shards, c + 1));
        let shard = archive.slice_rows(start..end).map_err(|e| e.to_string())?;
        // `start` is the shard's absolute row offset: row i of this
        // shard draws the stream of archive row start + i, which is
        // what makes the shard layout unobservable in the output.
        plan.repair_shard(&shard, seed, start as u64)
    })
    .map_err(|e| e.to_string())?;

    // Index-ordered reassembly: parts[c] holds rows start(c)..start(c+1),
    // so straight concatenation restores archive row order exactly.
    let mut columns: Vec<Vec<f64>> = vec![Vec::with_capacity(n); archive.dim()];
    let mut out_of_range = 0u64;
    for (part_cols, oob) in parts {
        out_of_range += oob;
        for (col, part) in columns.iter_mut().zip(part_cols) {
            col.extend_from_slice(&part);
        }
    }
    Ok((out_of_range, columns))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_bounds_partition_exactly() {
        for n in [0usize, 1, 2, 7, 100, 101] {
            for chunks in [1usize, 2, 3, 7, 16] {
                assert_eq!(shard_start(n, chunks, 0), 0);
                assert_eq!(shard_start(n, chunks, chunks), n);
                for c in 0..chunks {
                    let len = shard_start(n, chunks, c + 1) - shard_start(n, chunks, c);
                    assert!(len >= n / chunks && len <= n / chunks + 1, "n={n} c={c}");
                }
            }
        }
    }
}
