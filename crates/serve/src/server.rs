//! The `otrepaird` server: a TCP accept loop, a shared
//! [`PlanRegistry`], and the sharded repair executor.
//!
//! # Determinism under sharding
//!
//! Every `Repair` request is split into `shards` contiguous row chunks
//! (the same `base + (c < rem)` bounds `otr-par` uses for its own
//! chunking), each repaired through
//! [`RegisteredPlan::repair_shard`](crate::registry::RegisteredPlan::repair_shard)
//! with its **start row as the RNG offset**, and reassembled in
//! shard-index order. Because row `i`
//! always draws from `splitmix_seed(seed, i)` no matter which shard it
//! lands in, the response bytes are a pure function of
//! `(plan, seed, archive)` — shard count, worker threads, and client
//! interleaving are unobservable. `docs/determinism.md` derives this
//! contract; `tests/serve.rs` pins it.
//!
//! # Connection model and hardening
//!
//! One thread per connection, frames handled strictly in order per
//! connection (so a client's own requests never race each other),
//! connections independent. Four defences keep a misbehaving peer from
//! degrading anyone else's service (`docs/operations.md`, "Failure
//! modes & recovery"):
//!
//! * **Governor** — at most [`ServeConfig::max_conns`] connection
//!   threads exist at once; excess connections get an immediate
//!   [`ErrorCode::Overloaded`] error frame and are closed instead of
//!   spawning an unbounded thread.
//! * **Frame deadlines** — once the first byte of a frame arrives, the
//!   whole frame must arrive within [`ServeConfig::deadline_ms`], and
//!   response writes must keep making progress on the same budget. A
//!   slow-loris peer (header then silence, or a trickle of bytes) is
//!   killed with [`ErrorCode::DeadlineExceeded`] rather than pinning a
//!   thread. Idle connections *between* frames may sit forever — that
//!   is normal keep-alive.
//! * **Panic isolation** — each request's decode + dispatch runs under
//!   `catch_unwind`: a poisoned request answers
//!   [`ErrorCode::Internal`] and closes that socket; the daemon and
//!   registry stay up.
//! * **Graceful drain** — shutdown stops accepting, but a frame whose
//!   first byte already arrived is read to completion (bounded by the
//!   deadline), answered, and only then is its connection closed — no
//!   in-flight repair is ever raced by exit.
//!
//! Reads poll a shared stop flag every `POLL_INTERVAL` so
//! [`ServerHandle::shutdown`] interrupts idle connections promptly;
//! [`Server::run`]'s accept loop is woken by a self-connection.

use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use otr_core::{plan_group_divergences, DriftConfig, DriftMonitor, RepairPlanner};
use otr_data::{ColumnarDataset, Dataset, LabelledPoint};
use otr_par::{thread_count, try_par_map_indexed};

use crate::protocol::{
    decode_header, write_frame, AuditRecord, AuditStratum, DriftReport, DriftStratum, ErrorCode,
    Request, Response, ServerInfo, HEADER_LEN, PROTOCOL_VERSION,
};
use crate::registry::{persist_plan, unpersist_plan, PlanRegistry, RegisteredPlan};

/// How often blocked reads wake to check the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(200);

/// Payloads are read (and allocated) in steps of at most this many
/// bytes, so a header *claiming* a huge payload cannot balloon memory
/// before any of it actually arrives.
const PAYLOAD_CHUNK: usize = 1 << 20;

/// Frame-drain budget during shutdown when no deadline is configured:
/// a frame caught mid-arrival gets this long to finish before the
/// connection is dropped anyway.
const DRAIN_GRACE: Duration = Duration::from_secs(2);

/// How long the accept loop will spend writing an [`ErrorCode::Overloaded`]
/// rejection before giving up on the peer.
const REJECT_WRITE_TIMEOUT: Duration = Duration::from_secs(1);

/// Deployment knobs for [`Server::bind`]. Execution policy only: no
/// field affects repaired bytes (the serving determinism contract).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 lets the OS pick — read the
    /// real address back from [`Server::local_addr`]).
    pub bind: String,
    /// Worker threads for sharded repair (`0` = auto: `OTR_THREADS` if
    /// set, else available parallelism).
    pub threads: usize,
    /// Contiguous row shards per repair request (`0` = auto: the
    /// resolved thread count).
    pub shards: usize,
    /// Row-batch size of the columnar kernels inside each shard
    /// (`None` = auto: `OTR_BATCH_ROWS` if set, else the library
    /// default).
    pub batch_rows: Option<usize>,
    /// Directory of plan artifacts to preload at startup
    /// (`name.json` → `name@1`, `name@v.json` → `name@v`).
    pub plans_dir: Option<PathBuf>,
    /// Connection governor: the most connection threads allowed at
    /// once (`0` = unlimited). Connections past the cap are politely
    /// rejected with [`ErrorCode::Overloaded`] and closed.
    pub max_conns: usize,
    /// Per-frame deadline in milliseconds (`0` = none): from the first
    /// byte of a frame, the rest must arrive within this budget, and
    /// each response write must make progress on the same budget.
    /// Violations are killed with [`ErrorCode::DeadlineExceeded`].
    pub deadline_ms: u64,
    /// Chaos-testing hook: a `Repair` request naming this plan panics
    /// the connection thread deliberately, so the panic-isolation
    /// contract stays testable end to end. Always `None` in
    /// production deployments (no daemon flag sets it).
    pub chaos_panic_plan: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            bind: "127.0.0.1:7878".into(),
            threads: 0,
            shards: 0,
            batch_rows: None,
            plans_dir: None,
            max_conns: 256,
            deadline_ms: 30_000,
            chaos_panic_plan: None,
        }
    }
}

/// Rows a drift watch retains (most recent first dropped oldest) as
/// the research snapshot for a triggered re-design. Bounds daemon
/// memory on an endless archive stream.
const MAX_WATCH_BUFFER_ROWS: usize = 1 << 20;

/// Counters and the stop flag, shared by every connection thread.
#[derive(Debug, Default)]
struct Shared {
    stop: AtomicBool,
    active: AtomicUsize,
    accepted: AtomicU64,
    rejected_overload: AtomicU64,
    deadline_kills: AtomicU64,
    panics_caught: AtomicU64,
    requests: AtomicU64,
    rows_repaired: AtomicU64,
    swaps: AtomicU64,
    /// Active drift watches, keyed by plan name. One watch per name:
    /// re-issuing `Watch` re-arms the monitor (preserving the audit
    /// trail and swap count).
    watches: Mutex<HashMap<String, WatchState>>,
}

impl Shared {
    /// Lock the watch map, recovering from poisoning (the same
    /// rationale as the registry's lock: all mutations either complete
    /// or leave the map coherent, and the daemon must outlive a
    /// panicked request).
    fn watches(&self) -> std::sync::MutexGuard<'_, HashMap<String, WatchState>> {
        self.watches
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// One armed drift watch: the monitor, the version it is armed
/// against, the buffered archive rows a triggered re-design will use
/// as its research snapshot, and the audit trail of past swaps.
#[derive(Debug)]
struct WatchState {
    /// Plan version the monitor's reference marginals came from; also
    /// the version whose repairs feed the monitor.
    version: u32,
    monitor: DriftMonitor,
    /// Archive rows observed since the watch was (re)armed — the
    /// research snapshot for the next re-design. Oldest rows are shed
    /// past [`MAX_WATCH_BUFFER_ROWS`].
    buffer: Vec<LabelledPoint>,
    /// Hot swaps performed under this name, oldest first.
    audit: Vec<AuditRecord>,
    swaps: u64,
}

/// A bound (but not yet serving) `otrepaird` instance.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    registry: Arc<PlanRegistry>,
    shared: Arc<Shared>,
    threads: usize,
    shards: usize,
    max_conns: usize,
    deadline_ms: u64,
    chaos_panic_plan: Option<String>,
    plans_dir: Option<PathBuf>,
}

/// A remote control for a running [`Server`]: stats and shutdown.
/// Cheap to clone; safe to use from any thread.
#[derive(Debug, Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Ask the server to stop. New connections stop being accepted,
    /// idle connections close within one read-poll interval (200 ms),
    /// and a frame already mid-arrival is drained — read to completion
    /// (bounded by the frame deadline), answered, then closed — before
    /// [`Server::run`] returns. Idempotent.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // The accept loop may be parked in accept(); a throwaway
        // connection wakes it to observe the flag.
        let _ = TcpStream::connect(self.addr);
    }

    /// Requests handled so far (all message types).
    pub fn requests(&self) -> u64 {
        self.shared.requests.load(Ordering::Relaxed)
    }

    /// Archive rows repaired so far.
    pub fn rows_repaired(&self) -> u64 {
        self.shared.rows_repaired.load(Ordering::Relaxed)
    }

    /// Connections rejected by the governor so far.
    pub fn rejected_overload(&self) -> u64 {
        self.shared.rejected_overload.load(Ordering::Relaxed)
    }

    /// Connections killed for blowing the frame deadline so far.
    pub fn deadline_kills(&self) -> u64 {
        self.shared.deadline_kills.load(Ordering::Relaxed)
    }

    /// Request panics caught (and isolated) so far.
    pub fn panics_caught(&self) -> u64 {
        self.shared.panics_caught.load(Ordering::Relaxed)
    }
}

impl Server {
    /// Bind the listen socket, resolve the thread/shard policy, and
    /// preload `plans_dir` (if configured). No connections are accepted
    /// until [`Server::run`].
    ///
    /// # Errors
    /// Bind failures and unloadable preload directories.
    pub fn bind(config: &ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.bind)?;
        let threads = thread_count(config.threads);
        let shards = if config.shards == 0 {
            threads
        } else {
            config.shards
        };
        // Shards run concurrently on the server's own pool, so each
        // registered plan executes single-threaded: two multiplying
        // levels of parallelism would oversubscribe the machine.
        let registry = Arc::new(PlanRegistry::new(1, config.batch_rows));
        if let Some(dir) = &config.plans_dir {
            registry
                .load_dir(dir)
                .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
        }
        Ok(Self {
            listener,
            registry,
            shared: Arc::new(Shared::default()),
            threads,
            shards,
            max_conns: config.max_conns,
            deadline_ms: config.deadline_ms,
            chaos_panic_plan: config.chaos_panic_plan.clone(),
            plans_dir: config.plans_dir.clone(),
        })
    }

    /// The bound address (the real port when `bind` asked for 0).
    ///
    /// # Errors
    /// Propagates `local_addr` failures.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The server's plan registry (shared with all connections).
    pub fn registry(&self) -> &Arc<PlanRegistry> {
        &self.registry
    }

    /// A [`ServerHandle`] for stats and shutdown from other threads.
    ///
    /// # Errors
    /// Propagates `local_addr` failures.
    pub fn handle(&self) -> std::io::Result<ServerHandle> {
        Ok(ServerHandle {
            addr: self.local_addr()?,
            shared: Arc::clone(&self.shared),
        })
    }

    /// Accept and serve connections until [`ServerHandle::shutdown`].
    /// Blocks the calling thread; spawn it if you need to keep going
    /// (as `tests/serve.rs` and the CLI's `--port-file` flow do).
    ///
    /// # Errors
    /// Fatal accept-loop failures only; per-connection errors are
    /// answered on the wire (or logged to stderr) and do not stop the
    /// server.
    pub fn run(self) -> std::io::Result<()> {
        let mut workers = Vec::new();
        for conn in self.listener.incoming() {
            if self.shared.stop.load(Ordering::SeqCst) {
                break;
            }
            let stream = match conn {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("otrepaird: accept failed: {e}");
                    continue;
                }
            };
            self.shared.accepted.fetch_add(1, Ordering::Relaxed);
            // The governor: the accept loop is the only thread that
            // increments `active`, so the load-then-increment below
            // cannot race past the cap.
            if self.max_conns > 0 && self.shared.active.load(Ordering::SeqCst) >= self.max_conns {
                self.shared
                    .rejected_overload
                    .fetch_add(1, Ordering::Relaxed);
                reject_overloaded(stream, self.max_conns);
                continue;
            }
            self.shared.active.fetch_add(1, Ordering::SeqCst);
            let ctx = ConnCtx {
                registry: Arc::clone(&self.registry),
                shared: Arc::clone(&self.shared),
                threads: self.threads,
                shards: self.shards,
                max_conns: self.max_conns,
                deadline_ms: self.deadline_ms,
                chaos_panic_plan: self.chaos_panic_plan.clone(),
                plans_dir: self.plans_dir.clone(),
            };
            workers.push(std::thread::spawn(move || {
                // Release the governor slot when this thread exits —
                // Drop runs even if handle_conn panics outside the
                // per-request catch_unwind.
                let _slot = SlotGuard(Arc::clone(&ctx.shared));
                if let Err(e) = handle_conn(stream, &ctx) {
                    eprintln!("otrepaird: connection error: {e}");
                }
            }));
            // Reap finished connection threads so a long-lived daemon
            // doesn't accumulate handles.
            workers.retain(|h| !h.is_finished());
        }
        // Drain: every surviving connection thread finishes (and
        // answers) any frame that was already mid-arrival before the
        // server exits — bounded by the frame deadline / drain grace.
        for h in workers {
            let _ = h.join();
        }
        Ok(())
    }
}

/// Decrements the active-connection gauge when a connection thread
/// exits, however it exits.
struct SlotGuard(Arc<Shared>);

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.0.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Politely refuse a connection past the governor's cap: best-effort
/// `Overloaded` error frame (a few dozen bytes — fits any socket
/// buffer, and bounded by a write timeout regardless), then close.
fn reject_overloaded(mut stream: TcpStream, max_conns: usize) {
    let _ = stream.set_write_timeout(Some(REJECT_WRITE_TIMEOUT));
    let resp = Response::Error {
        code: ErrorCode::Overloaded.as_u16(),
        message: format!("server at --max-conns {max_conns} capacity; retry with backoff"),
    };
    let (t, p) = resp.encode();
    let _ = write_frame(&mut stream, t, &p);
}

/// Everything one connection thread needs.
struct ConnCtx {
    registry: Arc<PlanRegistry>,
    shared: Arc<Shared>,
    threads: usize,
    shards: usize,
    max_conns: usize,
    deadline_ms: u64,
    chaos_panic_plan: Option<String>,
    /// When set, hot-loaded and hot-swapped plan versions are
    /// persisted here so a daemon restart serves the same registry.
    plans_dir: Option<PathBuf>,
}

/// The per-frame deadline clock. Armed by the first byte of a frame,
/// cleared when the frame has fully arrived; while armed, it also
/// marks the connection as mid-frame for shutdown-drain purposes.
struct FrameClock {
    deadline: Option<Duration>,
    armed: Option<Instant>,
}

impl FrameClock {
    fn new(deadline_ms: u64) -> Self {
        Self {
            deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
            armed: None,
        }
    }

    /// A frame byte arrived: start (or keep) the countdown.
    fn arm(&mut self) {
        if self.armed.is_none() {
            self.armed = Some(Instant::now());
        }
    }

    fn mid_frame(&self) -> bool {
        self.armed.is_some()
    }

    /// True once the armed frame has been in flight past the deadline.
    /// During shutdown a frame with *no* configured deadline still gets
    /// only [`DRAIN_GRACE`], so drain cannot hang on a stalled peer.
    fn expired(&self, stopping: bool) -> bool {
        let Some(since) = self.armed else {
            return false;
        };
        match self.deadline {
            Some(d) => since.elapsed() >= d,
            None => stopping && since.elapsed() >= DRAIN_GRACE,
        }
    }
}

/// How a blocking read ended.
enum ReadOutcome {
    /// The buffer was filled.
    Done,
    /// Clean end between frames: EOF or shutdown with no frame bytes
    /// pending.
    CleanClose,
    /// The frame deadline expired mid-frame.
    Deadline,
}

/// Fill `buf` from the stream, polling the stop flag between timeouts
/// and enforcing the frame deadline in `clock`.
///
/// Mid-frame EOF (peer vanished with a frame half-sent) is an error —
/// silently dropping bytes would corrupt the session. Shutdown
/// observed mid-frame does **not** abort the read: the frame is
/// drained (bounded by the clock) so its request can still be
/// answered.
fn read_full(
    stream: &mut TcpStream,
    buf: &mut [u8],
    ctx: &ConnCtx,
    clock: &mut FrameClock,
) -> std::io::Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        let stopping = ctx.shared.stop.load(Ordering::SeqCst);
        if stopping && !clock.mid_frame() && filled == 0 {
            return Ok(ReadOutcome::CleanClose);
        }
        if clock.expired(stopping) {
            return Ok(ReadOutcome::Deadline);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                if !clock.mid_frame() && filled == 0 {
                    return Ok(ReadOutcome::CleanClose);
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => {
                filled += n;
                clock.arm();
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(e) => return Err(e),
        }
    }
    Ok(ReadOutcome::Done)
}

/// Read an `len`-byte payload in [`PAYLOAD_CHUNK`] steps, allocating
/// only as bytes actually arrive — an adversarial length field costs
/// the peer real bytes, not the server real memory.
fn read_payload(
    stream: &mut TcpStream,
    len: usize,
    ctx: &ConnCtx,
    clock: &mut FrameClock,
) -> std::io::Result<(Vec<u8>, ReadOutcome)> {
    let mut payload = Vec::new();
    while payload.len() < len {
        let start = payload.len();
        let step = (len - start).min(PAYLOAD_CHUNK);
        payload.resize(start + step, 0);
        match read_full(stream, &mut payload[start..], ctx, clock)? {
            ReadOutcome::Done => {}
            other => return Ok((payload, other)),
        }
    }
    Ok((payload, ReadOutcome::Done))
}

/// Best-effort error frame + deadline-kill bookkeeping, then the
/// caller closes the connection.
fn kill_deadline(stream: &mut TcpStream, ctx: &ConnCtx) {
    ctx.shared.deadline_kills.fetch_add(1, Ordering::Relaxed);
    let resp = Response::Error {
        code: ErrorCode::DeadlineExceeded.as_u16(),
        message: format!(
            "frame did not complete within the {} ms deadline",
            ctx.deadline_ms
        ),
    };
    let (t, p) = resp.encode();
    let _ = write_frame(stream, t, &p);
}

/// Serve one connection: read frames in order, answer each.
fn handle_conn(mut stream: TcpStream, ctx: &ConnCtx) -> std::io::Result<()> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    if ctx.deadline_ms > 0 {
        // SO_SNDTIMEO is per write call: a reader making *any* progress
        // never trips it, a stalled reader does — the write-side twin
        // of the frame deadline.
        stream.set_write_timeout(Some(Duration::from_millis(ctx.deadline_ms)))?;
    }
    stream.set_nodelay(true)?;
    loop {
        let mut clock = FrameClock::new(ctx.deadline_ms);
        let mut header = [0u8; HEADER_LEN];
        match read_full(&mut stream, &mut header, ctx, &mut clock)? {
            ReadOutcome::Done => {}
            ReadOutcome::CleanClose => return Ok(()),
            ReadOutcome::Deadline => {
                kill_deadline(&mut stream, ctx);
                return Ok(());
            }
        }
        let (msg_type, payload_len) = match decode_header(&header) {
            Ok(parsed) => parsed,
            Err(err) => {
                ctx.shared.requests.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Error {
                    code: err.code().as_u16(),
                    message: err.message().into(),
                };
                let (t, p) = resp.encode();
                write_response(&mut stream, ctx, t, &p)?;
                if err.is_fatal() {
                    // Framing is gone; resynchronization is impossible.
                    return Ok(());
                }
                // UnsupportedVersion: framing is intact, so skip the
                // payload and keep serving this connection.
                match read_payload(&mut stream, decode_payload_len(&header), ctx, &mut clock)?.1 {
                    ReadOutcome::Done => continue,
                    ReadOutcome::CleanClose => return Ok(()),
                    ReadOutcome::Deadline => {
                        kill_deadline(&mut stream, ctx);
                        return Ok(());
                    }
                }
            }
        };
        let (payload, outcome) = read_payload(&mut stream, payload_len, ctx, &mut clock)?;
        match outcome {
            ReadOutcome::Done => {}
            ReadOutcome::CleanClose => return Ok(()),
            ReadOutcome::Deadline => {
                kill_deadline(&mut stream, ctx);
                return Ok(());
            }
        }
        ctx.shared.requests.fetch_add(1, Ordering::Relaxed);
        // Panic isolation: a request that panics answers Internal and
        // costs its own connection — never the daemon. AssertUnwindSafe
        // is sound here: the registry recovers poisoned locks
        // (registry.rs), and all other captured state is either atomic
        // or owned by this frame.
        let dispatched = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            match Request::decode(msg_type, &payload) {
                Ok(req) => dispatch(req, ctx),
                Err(err) => Response::Error {
                    code: err.code().as_u16(),
                    message: err.message().into(),
                },
            }
        }));
        let resp = match dispatched {
            Ok(resp) => resp,
            Err(_) => {
                ctx.shared.panics_caught.fetch_add(1, Ordering::Relaxed);
                let resp = Response::Error {
                    code: ErrorCode::Internal.as_u16(),
                    message: "request panicked; the panic was isolated to this connection".into(),
                };
                let (t, p) = resp.encode();
                let _ = write_response(&mut stream, ctx, t, &p);
                return Ok(());
            }
        };
        let (t, p) = resp.encode();
        write_response(&mut stream, ctx, t, &p)?;
        if ctx.shared.stop.load(Ordering::SeqCst) {
            // Drained: the in-flight frame was answered; close instead
            // of waiting for another.
            return Ok(());
        }
    }
}

/// Write a response frame, converting a write-timeout stall into a
/// deadline kill (counted; the caller sees `Err` and closes).
fn write_response(
    stream: &mut TcpStream,
    ctx: &ConnCtx,
    msg_type: u8,
    payload: &[u8],
) -> std::io::Result<()> {
    write_frame(stream, msg_type, payload).map_err(|e| {
        if matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ) {
            ctx.shared.deadline_kills.fetch_add(1, Ordering::Relaxed);
            std::io::Error::new(
                std::io::ErrorKind::TimedOut,
                format!(
                    "response write stalled past the {} ms deadline",
                    ctx.deadline_ms
                ),
            )
        } else {
            e
        }
    })
}

/// The payload length field alone (valid even when the version byte is
/// not): used to skip past frames we answered with an error.
fn decode_payload_len(h: &[u8; HEADER_LEN]) -> usize {
    u32::from_be_bytes([h[8], h[9], h[10], h[11]]) as usize
}

/// Execute one decoded request against the registry.
fn dispatch(req: Request, ctx: &ConnCtx) -> Response {
    match req {
        Request::Ping => Response::Pong,
        Request::LoadPlan {
            kind,
            name,
            version,
            json,
        } => match ctx.registry.load(&name, version, kind, &json) {
            Ok(_) => {
                // Plans loaded over the wire must survive a daemon
                // restart: persist the artifact next to the preloaded
                // ones. The load already succeeded; a persistence
                // failure downgrades durability, not service.
                if let Some(dir) = &ctx.plans_dir {
                    if let Err(e) = persist_plan(dir, &name, version, &json) {
                        eprintln!("otrepaird: could not persist {name}@{version}: {e}");
                    }
                }
                Response::PlanLoaded
            }
            Err(e) => Response::Error {
                code: e.code().as_u16(),
                message: e.to_string(),
            },
        },
        Request::ListPlans => Response::PlanList(ctx.registry.list()),
        Request::EvictPlan { name, version } => match ctx.registry.evict(&name, version) {
            Ok(()) => {
                if let Some(dir) = &ctx.plans_dir {
                    unpersist_plan(dir, &name, version);
                }
                Response::PlanEvicted
            }
            Err(e) => Response::Error {
                code: e.code().as_u16(),
                message: e.to_string(),
            },
        },
        Request::Repair {
            name,
            version,
            seed,
            archive,
        } => {
            if ctx.chaos_panic_plan.as_deref() == Some(name.as_str()) {
                panic!("chaos hook: injected panic for plan {name:?}");
            }
            match ctx.registry.get(&name, version) {
                Ok(plan) => match repair_sharded(plan.as_ref(), &archive, seed, ctx) {
                    Ok((out_of_range, columns)) => {
                        ctx.shared
                            .rows_repaired
                            .fetch_add(archive.len() as u64, Ordering::Relaxed);
                        // Drift accounting runs *after* the repair:
                        // this response is served by the version
                        // resolved above; a swap it triggers only
                        // affects later requests.
                        observe_watch(&name, version, &archive, ctx);
                        Response::Repaired {
                            out_of_range,
                            columns,
                        }
                    }
                    Err(msg) => Response::Error {
                        code: ErrorCode::RepairFailed.as_u16(),
                        message: msg,
                    },
                },
                Err(e) => Response::Error {
                    code: e.code().as_u16(),
                    message: e.to_string(),
                },
            }
        }
        Request::Watch {
            name,
            threshold,
            trips,
            check_every,
            min_rows,
        } => arm_watch(
            &name,
            DriftConfig {
                threshold,
                trips,
                check_every,
                min_rows,
            },
            ctx,
        ),
        Request::DriftStatus { name } => match ctx.shared.watches().get(&name) {
            Some(w) => Response::DriftReport(DriftReport {
                version: w.version,
                rows_seen: w.monitor.rows_seen(),
                checks: w.monitor.checks(),
                consecutive: w.monitor.consecutive(),
                tripped: w.monitor.tripped(),
                swaps: w.swaps,
                strata: w
                    .monitor
                    .divergences()
                    .iter()
                    .map(|d| DriftStratum {
                        u: d.u,
                        k: d.k as u32,
                        divergence: d.divergence,
                    })
                    .collect(),
            }),
            None => Response::Error {
                code: ErrorCode::UnknownPlan.as_u16(),
                message: format!("no drift watch armed on {name}"),
            },
        },
        Request::Audit { name } => match ctx.shared.watches().get(&name) {
            Some(w) => Response::AuditRecords(w.audit.clone()),
            None => Response::Error {
                code: ErrorCode::UnknownPlan.as_u16(),
                message: format!("no drift watch armed on {name}"),
            },
        },
        Request::Info => Response::Info(ServerInfo {
            protocol_version: PROTOCOL_VERSION,
            plans: ctx.registry.len() as u32,
            requests: ctx.shared.requests.load(Ordering::Relaxed),
            rows_repaired: ctx.shared.rows_repaired.load(Ordering::Relaxed),
            shards: ctx.shards as u32,
            threads: ctx.threads as u32,
            accepted: ctx.shared.accepted.load(Ordering::Relaxed),
            rejected_overload: ctx.shared.rejected_overload.load(Ordering::Relaxed),
            deadline_kills: ctx.shared.deadline_kills.load(Ordering::Relaxed),
            panics_caught: ctx.shared.panics_caught.load(Ordering::Relaxed),
            max_conns: ctx.max_conns as u32,
            watches: ctx.shared.watches().len() as u32,
            swaps: ctx.shared.swaps.load(Ordering::Relaxed),
        }),
    }
}

/// Arm (or re-arm) a drift watch on the latest version of `name`.
/// Re-arming replaces the monitor and buffer but keeps the audit trail
/// and swap count — operators tune thresholds without losing history.
fn arm_watch(name: &str, config: DriftConfig, ctx: &ConnCtx) -> Response {
    let (version, plan) = match ctx.registry.latest(name) {
        Ok(found) => found,
        Err(e) => {
            return Response::Error {
                code: e.code().as_u16(),
                message: e.to_string(),
            }
        }
    };
    let RegisteredPlan::Scalar(scalar) = plan.as_ref() else {
        return Response::Error {
            code: ErrorCode::PlanInvalid.as_u16(),
            message: format!("drift watches require a scalar plan; {name} is joint"),
        };
    };
    match DriftMonitor::for_plan(scalar, config) {
        Ok(monitor) => {
            let mut watches = ctx.shared.watches();
            let (audit, swaps) = watches
                .remove(name)
                .map(|w| (w.audit, w.swaps))
                .unwrap_or_default();
            watches.insert(
                name.to_string(),
                WatchState {
                    version,
                    monitor,
                    buffer: Vec::new(),
                    audit,
                    swaps,
                },
            );
            Response::Watching { version }
        }
        Err(e) => Response::Error {
            code: ErrorCode::BadPayload.as_u16(),
            message: e.to_string(),
        },
    }
}

/// Fold a just-repaired archive into the drift watch on `name` (when
/// one is armed and this request was served by the watched version),
/// hot-swapping in a re-designed plan if the monitor trips.
fn observe_watch(name: &str, requested_version: u32, archive: &ColumnarDataset, ctx: &ConnCtx) {
    let mut watches = ctx.shared.watches();
    let Some(w) = watches.get_mut(name) else {
        return;
    };
    // Repairs pinned to an *older* version are stale traffic, not
    // evidence about the watched plan; `0` resolves to the latest,
    // which is the watched version whenever the watch is healthy.
    if requested_version != 0 && requested_version != w.version {
        return;
    }
    let batch = archive.to_dataset();
    if w.monitor.observe(&batch).is_err() {
        // Dimension mismatch: the repair itself would have failed
        // before we got here; nothing to book.
        return;
    }
    w.buffer.extend_from_slice(batch.points());
    if w.buffer.len() > MAX_WATCH_BUFFER_ROWS {
        let excess = w.buffer.len() - MAX_WATCH_BUFFER_ROWS;
        w.buffer.drain(..excess);
    }
    if w.monitor.tripped() {
        swap_plan(name, w, ctx);
    }
}

/// The hot-swap: warm re-design on the buffered archive rows, register
/// as the next version of the same name, persist, audit, re-arm.
fn swap_plan(name: &str, w: &mut WatchState, ctx: &ConnCtx) {
    let Ok(current) = ctx.registry.get(name, w.version) else {
        // Watched version evicted under us: the watch is orphaned;
        // leave it tripped for DriftStatus to surface.
        return;
    };
    let RegisteredPlan::Scalar(parent) = current.as_ref() else {
        return;
    };
    let trigger = w.monitor.max_divergence();
    let rows_observed = w.monitor.rows_seen();
    let research = match Dataset::from_points(std::mem::take(&mut w.buffer)) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("otrepaird: drift re-design for {name} has no usable buffer: {e}");
            let _ = w.monitor.reset(parent);
            return;
        }
    };
    // Warm re-design: seeded from the parent's banked Sinkhorn duals,
    // so the swap costs a fraction of a cold design (docs/determinism.md).
    let new_plan = match RepairPlanner::new(parent.config).redesign(&research, parent) {
        Ok(p) => p,
        Err(e) => {
            // Re-arm against the current plan instead of retrying on
            // every subsequent repair with the same doomed buffer.
            eprintln!("otrepaird: drift re-design for {name} failed: {e}; watch re-armed");
            let _ = w.monitor.reset(parent);
            return;
        }
    };
    let e_before = plan_group_divergences(parent).unwrap_or_default();
    let e_after = plan_group_divergences(&new_plan).unwrap_or_default();
    let new_version = match ctx.registry.latest(name) {
        Ok((v, _)) => v.saturating_add(1),
        Err(_) => w.version.saturating_add(1),
    };
    if let Err(e) = w.monitor.reset(&new_plan) {
        eprintln!("otrepaird: could not re-arm drift watch on {name}: {e}");
        return;
    }
    let json = new_plan.to_json();
    if let Err(e) = ctx.registry.register(
        name,
        new_version,
        Arc::new(RegisteredPlan::Scalar(new_plan)),
    ) {
        eprintln!("otrepaird: could not register {name}@{new_version}: {e}");
        return;
    }
    match (&ctx.plans_dir, &json) {
        (Some(dir), Ok(json)) => {
            if let Err(e) = persist_plan(dir, name, new_version, json) {
                eprintln!("otrepaird: could not persist {name}@{new_version}: {e}");
            }
        }
        (Some(_), Err(e)) => {
            eprintln!("otrepaird: could not serialize {name}@{new_version}: {e}");
        }
        (None, _) => {}
    }
    w.audit.push(AuditRecord {
        version: new_version,
        parent: w.version,
        rows_observed,
        trigger_divergence: trigger,
        strata: e_before
            .iter()
            .zip(&e_after)
            .map(|(&(u, k, before), &(_, _, after))| AuditStratum {
                u,
                k: k as u32,
                e_before: before,
                e_after: after,
            })
            .collect(),
    });
    eprintln!(
        "otrepaird: drift tripped on {name}@{} (sym-KL {trigger:.4} over {rows_observed} rows); \
         hot-swapped to {name}@{new_version}",
        w.version
    );
    w.version = new_version;
    w.swaps += 1;
    ctx.shared.swaps.fetch_add(1, Ordering::Relaxed);
}

/// Start row of shard `c` when `n` rows split into `chunks` contiguous
/// shards (first `n % chunks` shards get one extra row — the same
/// layout `otr-par` itself chunks by).
fn shard_start(n: usize, chunks: usize, c: usize) -> usize {
    let base = n / chunks;
    let rem = n % chunks;
    c * base + c.min(rem)
}

/// Shard the archive, repair every shard at its absolute row offset,
/// and reassemble in index order.
fn repair_sharded(
    plan: &crate::registry::RegisteredPlan,
    archive: &ColumnarDataset,
    seed: u64,
    ctx: &ConnCtx,
) -> Result<(u64, Vec<Vec<f64>>), String> {
    let n = archive.len();
    let shards = ctx.shards.clamp(1, n.max(1));
    let parts = try_par_map_indexed(shards, ctx.threads, |c| {
        let (start, end) = (shard_start(n, shards, c), shard_start(n, shards, c + 1));
        let shard = archive.slice_rows(start..end).map_err(|e| e.to_string())?;
        // `start` is the shard's absolute row offset: row i of this
        // shard draws the stream of archive row start + i, which is
        // what makes the shard layout unobservable in the output.
        plan.repair_shard(&shard, seed, start as u64)
    })
    .map_err(|e| e.to_string())?;

    // Index-ordered reassembly: parts[c] holds rows start(c)..start(c+1),
    // so straight concatenation restores archive row order exactly.
    let mut columns: Vec<Vec<f64>> = vec![Vec::with_capacity(n); archive.dim()];
    let mut out_of_range = 0u64;
    for (part_cols, oob) in parts {
        out_of_range += oob;
        for (col, part) in columns.iter_mut().zip(part_cols) {
            col.extend_from_slice(&part);
        }
    }
    Ok((out_of_range, columns))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_bounds_partition_exactly() {
        for n in [0usize, 1, 2, 7, 100, 101] {
            for chunks in [1usize, 2, 3, 7, 16] {
                assert_eq!(shard_start(n, chunks, 0), 0);
                assert_eq!(shard_start(n, chunks, chunks), n);
                for c in 0..chunks {
                    let len = shard_start(n, chunks, c + 1) - shard_start(n, chunks, c);
                    assert!(len >= n / chunks && len <= n / chunks + 1, "n={n} c={c}");
                }
            }
        }
    }

    #[test]
    fn frame_clock_arms_on_first_byte_and_expires() {
        let mut clock = FrameClock::new(1); // 1 ms deadline
        assert!(!clock.mid_frame());
        assert!(!clock.expired(false), "an unarmed clock never expires");
        clock.arm();
        assert!(clock.mid_frame());
        std::thread::sleep(Duration::from_millis(5));
        assert!(clock.expired(false));

        // No deadline configured: never expires outside shutdown...
        let mut free = FrameClock::new(0);
        free.arm();
        assert!(!free.expired(false));
        // ...and during shutdown gets only the drain grace (not yet
        // elapsed here).
        assert!(!free.expired(true));
    }
}
