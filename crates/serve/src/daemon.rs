//! The daemon entry point shared by the `otrepaird` binary and the
//! `otrepair serve` subcommand: flag parsing, startup logging, and the
//! blocking serve loop. Knob semantics are documented in
//! `docs/operations.md`.

use std::path::PathBuf;

use crate::server::{ServeConfig, Server, ServerHandle};

/// Parsed daemon command line.
#[derive(Debug, Clone, Default)]
pub struct DaemonArgs {
    /// The server configuration assembled from flags.
    pub config: ServeConfig,
    /// Where to write the bound `host:port` once listening (`--port-file`);
    /// how scripts and tests discover an OS-assigned port 0. Removed on
    /// clean shutdown so it can't dangle at a dead port.
    pub port_file: Option<PathBuf>,
}

/// One-line-per-flag usage text (shared by both binaries' `--help`).
pub const USAGE: &str = "\
Options:
  --bind <addr>        listen address (default 127.0.0.1:7878; port 0 = OS-assigned)
  --plans <dir>        preload every *.json plan artifact in <dir>
                       (name.json loads as name@1, name@3.json as name@3)
  --threads <n>        worker threads for sharded repair (default 0 = auto:
                       OTR_THREADS if set, else available parallelism)
  --shards <n>         row shards per repair request (default 0 = auto: the
                       resolved thread count)
  --batch-rows <n>     columnar kernel batch size (default 0 = auto:
                       OTR_BATCH_ROWS if set, else the library default)
  --max-conns <n>      connection cap: connections past <n> are rejected
                       with an Overloaded error frame (default 256; 0 = off)
  --deadline-ms <n>    per-frame deadline: a frame's bytes (and each
                       response write) must progress within <n> ms or the
                       connection is killed DeadlineExceeded
                       (default 30000; 0 = off)
  --port-file <path>   write the bound host:port to <path> once listening
                       (removed again on clean shutdown)
  --help               print this help";

impl DaemonArgs {
    /// Parse daemon flags (everything after the binary/subcommand name).
    ///
    /// # Errors
    /// A human-readable message for unknown flags, missing values, and
    /// unparsable numbers.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut out = Self::default();
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut value = |what: &str| {
                it.next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} needs {what}"))
            };
            match flag.as_str() {
                "--bind" => out.config.bind = value("an address")?,
                "--plans" => out.config.plans_dir = Some(PathBuf::from(value("a directory")?)),
                "--threads" => {
                    out.config.threads = parse_num(flag, &value("a thread count")?)?;
                }
                "--shards" => {
                    out.config.shards = parse_num(flag, &value("a shard count")?)?;
                }
                "--batch-rows" => {
                    let n: usize = parse_num(flag, &value("a batch size")?)?;
                    out.config.batch_rows = (n != 0).then_some(n);
                }
                "--max-conns" => {
                    out.config.max_conns = parse_num(flag, &value("a connection cap")?)?;
                }
                "--deadline-ms" => {
                    out.config.deadline_ms =
                        parse_num(flag, &value("a millisecond count")?)? as u64;
                }
                "--port-file" => out.port_file = Some(PathBuf::from(value("a path")?)),
                other => return Err(format!("unknown flag {other}")),
            }
        }
        Ok(out)
    }
}

fn parse_num(flag: &str, raw: &str) -> Result<usize, String> {
    raw.parse()
        .map_err(|_| format!("{flag}: {raw:?} is not a non-negative integer"))
}

/// Bind, announce, and serve until killed (or until a
/// [`ServerHandle::shutdown`] fires). On a *clean* return the
/// `--port-file` is removed so it can't dangle at a dead port; a
/// `SIGKILL`'d daemon can't clean up, which is why readers should
/// treat a connection-refused port file as stale.
///
/// # Errors
/// Bind/preload failures and fatal accept-loop errors.
pub fn run(args: &DaemonArgs) -> std::io::Result<()> {
    run_with_handle(args, |_| {})
}

/// Like [`run`], but hands the server's [`ServerHandle`] to `on_ready`
/// just before the blocking serve loop starts — how in-process callers
/// (tests, embedders) arrange their own shutdown trigger.
///
/// # Errors
/// Bind/preload failures and fatal accept-loop errors.
pub fn run_with_handle(
    args: &DaemonArgs,
    on_ready: impl FnOnce(ServerHandle),
) -> std::io::Result<()> {
    let server = Server::bind(&args.config)?;
    announce(&server, args)?;
    on_ready(server.handle()?);
    let result = server.run();
    if result.is_ok() {
        cleanup(args);
    }
    result
}

/// Print the startup banner and write the port file. Split from
/// [`run`] so the CLI can bind and announce, then serve on its own
/// terms.
///
/// # Errors
/// Port-file write failures.
pub fn announce(server: &Server, args: &DaemonArgs) -> std::io::Result<()> {
    let addr = server.local_addr()?;
    println!(
        "otrepaird listening on {addr} ({} plans loaded)",
        server.registry().len()
    );
    if let Some(path) = &args.port_file {
        // Write-then-rename so a polling reader never sees a partial
        // address.
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, addr.to_string())?;
        std::fs::rename(&tmp, path)?;
    }
    Ok(())
}

/// Remove the `--port-file` after a clean shutdown (best-effort: a
/// missing file is fine, and the serve result matters more than the
/// unlink). Callers that bind/announce/serve by hand (the CLI's
/// foreground path) should call this themselves once `Server::run`
/// returns.
pub fn cleanup(args: &DaemonArgs) {
    if let Some(path) = &args.port_file {
        let _ = std::fs::remove_file(path);
    }
}
