//! Repair-as-a-service: the `otrepaird` server, its plan registry, and
//! the wire protocol — OT fairness repair (Langbridge, Quinn &
//! Shawe-Taylor, ICDE 2024) behind a socket.
//!
//! The offline flow designs a [`otr_core::RepairPlan`] once from
//! research data, then applies it to archives with `otrepair apply`.
//! This crate keeps those designed plans **hot**: a long-running daemon
//! holds a [`registry::PlanRegistry`] of named, versioned, validated
//! plans and repairs incoming archives over a minimal length-prefixed
//! binary protocol ([`protocol`]) — no per-archive process spawn, no
//! re-parsing plan JSON per request.
//!
//! The load-bearing property is **serving determinism**: the server
//! shards every archive into contiguous row chunks for its worker
//! pool, but because row `i` always draws from its own SplitMix64
//! stream keyed by the *absolute* row index
//! ([`otr_core::RepairPlan::repair_columnar_shard`]) and shards are
//! reassembled in index order, the response bytes are a pure function
//! of `(plan, seed, archive)`. Same seed + same plan ⇒ same bytes,
//! whatever the shard layout, thread count, or client interleaving —
//! and byte-identical to an offline `otrepair apply`. The derivation
//! lives in `docs/determinism.md`; `tests/serve.rs` pins it.
//!
//! Everything here is plain `std` (`TcpListener` + threads): the
//! workspace vendors its few dependencies, and a repair server has no
//! need for an async runtime — repair is CPU-bound and the sharded
//! executor already saturates the cores.

pub mod client;
pub mod daemon;
pub mod faults;
pub mod protocol;
pub mod registry;
pub mod server;

pub use client::{Client, ClientError, Repaired, RetryPolicy, RetryingClient};
pub use faults::{Fault, FaultProxy, Span};
pub use protocol::{
    AuditRecord, AuditStratum, DriftReport, DriftStratum, ErrorCode, PlanInfo, PlanKind,
    ProtoError, ServerInfo, PROTOCOL_VERSION,
};
pub use registry::{persist_plan, unpersist_plan, PlanRegistry, RegisteredPlan, RegistryError};
pub use server::{ServeConfig, Server, ServerHandle};
