//! Classifier-level fairness proxies: `u`-conditional disparate impact
//! (Definition 2.3) and statistical-parity difference.

use serde::{Deserialize, Serialize};

use otr_data::Dataset;

use crate::error::{FairnessError, Result};

/// The per-`u` disparate-impact report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiReport {
    /// `DI(g, u) = Pr[g=1 | s=0, u] / Pr[g=1 | s=1, u]`, indexed by `u`.
    pub di_per_u: [f64; 2],
    /// Positive rates `Pr[g=1 | s, u]`, indexed `[u][s]`.
    pub positive_rates: [[f64; 2]; 2],
}

impl DiReport {
    /// The 80%-rule verdict (US EEOC): fair iff `min(DI, 1/DI) > 0.8` for
    /// every `u` group.
    pub fn passes_four_fifths_rule(&self) -> bool {
        self.di_per_u.iter().all(|&di| {
            if !di.is_finite() || di <= 0.0 {
                return false;
            }
            di.min(1.0 / di) > 0.8
        })
    }
}

/// Compute the `u`-conditional disparate impact of predictions `g(x)`
/// (Definition 2.3): the ratio of the `s=0` to `s=1` positive rate within
/// each `u` group.
///
/// `predictions[i]` must be the 0/1 decision for `data.points()[i]`.
///
/// # Errors
/// * Length mismatch between data and predictions.
/// * [`FairnessError::InsufficientGroup`] if any `(u, s)` group is empty.
/// * [`FairnessError::InvalidParameter`] if a denominator positive rate is
///   zero (DI undefined).
pub fn conditional_disparate_impact(data: &Dataset, predictions: &[u8]) -> Result<DiReport> {
    if predictions.len() != data.len() {
        return Err(FairnessError::InvalidParameter {
            name: "predictions",
            reason: format!(
                "length {} does not match dataset size {}",
                predictions.len(),
                data.len()
            ),
        });
    }
    let mut counts = [[0usize; 2]; 2];
    let mut positives = [[0usize; 2]; 2];
    for (p, &yhat) in data.points().iter().zip(predictions) {
        counts[p.u as usize][p.s as usize] += 1;
        if yhat != 0 {
            positives[p.u as usize][p.s as usize] += 1;
        }
    }
    let mut rates = [[0.0f64; 2]; 2];
    for u in 0..2 {
        for s in 0..2 {
            if counts[u][s] == 0 {
                return Err(FairnessError::InsufficientGroup {
                    group: format!("(u={u}, s={s})"),
                    found: 0,
                    needed: 1,
                });
            }
            rates[u][s] = positives[u][s] as f64 / counts[u][s] as f64;
        }
    }
    let mut di = [0.0f64; 2];
    for u in 0..2 {
        if rates[u][1] == 0.0 {
            return Err(FairnessError::InvalidParameter {
                name: "positive rate",
                reason: format!("Pr[g=1 | s=1, u={u}] is zero; DI undefined"),
            });
        }
        di[u] = rates[u][0] / rates[u][1];
    }
    Ok(DiReport {
        di_per_u: di,
        positive_rates: rates,
    })
}

/// Statistical-parity difference within each `u` group:
/// `Pr[g=1 | s=0, u] − Pr[g=1 | s=1, u]` (0 = parity).
///
/// # Errors
/// Same requirements as [`conditional_disparate_impact`] except zero
/// denominators are allowed.
pub fn statistical_parity_difference(data: &Dataset, predictions: &[u8]) -> Result<[f64; 2]> {
    if predictions.len() != data.len() {
        return Err(FairnessError::InvalidParameter {
            name: "predictions",
            reason: "length mismatch".into(),
        });
    }
    let mut counts = [[0usize; 2]; 2];
    let mut positives = [[0usize; 2]; 2];
    for (p, &yhat) in data.points().iter().zip(predictions) {
        counts[p.u as usize][p.s as usize] += 1;
        if yhat != 0 {
            positives[p.u as usize][p.s as usize] += 1;
        }
    }
    let mut out = [0.0f64; 2];
    for u in 0..2 {
        for s in 0..2 {
            if counts[u][s] == 0 {
                return Err(FairnessError::InsufficientGroup {
                    group: format!("(u={u}, s={s})"),
                    found: 0,
                    needed: 1,
                });
            }
        }
        out[u] = positives[u][0] as f64 / counts[u][0] as f64
            - positives[u][1] as f64 / counts[u][1] as f64;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use otr_data::LabelledPoint;

    /// Dataset with one point per (u, s, decision) cell, weighted by count.
    fn build(cells: &[(u8, u8, u8, usize)]) -> (Dataset, Vec<u8>) {
        let mut pts = Vec::new();
        let mut preds = Vec::new();
        for &(u, s, yhat, n) in cells {
            for _ in 0..n {
                pts.push(LabelledPoint { x: vec![0.0], s, u });
                preds.push(yhat);
            }
        }
        (Dataset::from_points(pts).unwrap(), preds)
    }

    #[test]
    fn perfect_parity_gives_di_one() {
        let (data, preds) = build(&[
            (0, 0, 1, 50),
            (0, 0, 0, 50),
            (0, 1, 1, 50),
            (0, 1, 0, 50),
            (1, 0, 1, 30),
            (1, 0, 0, 70),
            (1, 1, 1, 30),
            (1, 1, 0, 70),
        ]);
        let report = conditional_disparate_impact(&data, &preds).unwrap();
        assert!((report.di_per_u[0] - 1.0).abs() < 1e-12);
        assert!((report.di_per_u[1] - 1.0).abs() < 1e-12);
        assert!(report.passes_four_fifths_rule());
        let spd = statistical_parity_difference(&data, &preds).unwrap();
        assert!(spd[0].abs() < 1e-12 && spd[1].abs() < 1e-12);
    }

    #[test]
    fn biased_classifier_fails_four_fifths() {
        // s=0 gets positive 10% of the time, s=1 gets 50%.
        let (data, preds) = build(&[
            (0, 0, 1, 10),
            (0, 0, 0, 90),
            (0, 1, 1, 50),
            (0, 1, 0, 50),
            (1, 0, 1, 10),
            (1, 0, 0, 90),
            (1, 1, 1, 50),
            (1, 1, 0, 50),
        ]);
        let report = conditional_disparate_impact(&data, &preds).unwrap();
        assert!((report.di_per_u[0] - 0.2).abs() < 1e-12);
        assert!(!report.passes_four_fifths_rule());
        let spd = statistical_parity_difference(&data, &preds).unwrap();
        assert!((spd[0] + 0.4).abs() < 1e-12);
    }

    #[test]
    fn di_above_one_also_checked_by_rule() {
        // Favouring s=0: DI = 2.5 — also a four-fifths violation.
        let (data, preds) = build(&[
            (0, 0, 1, 50),
            (0, 0, 0, 50),
            (0, 1, 1, 20),
            (0, 1, 0, 80),
            (1, 0, 1, 50),
            (1, 0, 0, 50),
            (1, 1, 1, 20),
            (1, 1, 0, 80),
        ]);
        let report = conditional_disparate_impact(&data, &preds).unwrap();
        assert!((report.di_per_u[0] - 2.5).abs() < 1e-12);
        assert!(!report.passes_four_fifths_rule());
    }

    #[test]
    fn missing_group_is_an_error() {
        let (data, preds) = build(&[(0, 0, 1, 10), (0, 1, 1, 10), (1, 0, 1, 10)]);
        assert!(matches!(
            conditional_disparate_impact(&data, &preds),
            Err(FairnessError::InsufficientGroup { .. })
        ));
    }

    #[test]
    fn zero_denominator_is_an_error() {
        let (data, preds) = build(&[(0, 0, 1, 10), (0, 1, 0, 10), (1, 0, 1, 10), (1, 1, 1, 10)]);
        assert!(conditional_disparate_impact(&data, &preds).is_err());
    }

    #[test]
    fn length_mismatch_rejected() {
        let (data, _) = build(&[(0, 0, 1, 4), (0, 1, 1, 4), (1, 0, 1, 4), (1, 1, 1, 4)]);
        assert!(conditional_disparate_impact(&data, &[1, 0]).is_err());
        assert!(statistical_parity_difference(&data, &[1]).is_err());
    }
}
