//! # otr-fairness — fairness metrics and classifiers for `ot-fair-repair`
//!
//! * [`e_metric`] — the paper's decision-rule-agnostic fairness measure:
//!   the `u`-conditional symmetrized-KLD `E_u` (Definition 2.4) and its
//!   `u`-expectation `E` (Equation 3), estimated per feature by Gaussian
//!   KDE on a shared grid, exactly as the evaluation protocol of Section V
//!   requires.
//! * [`di`] — classifier-level proxies: `u`-conditional **disparate
//!   impact** `DI(g, u)` (Definition 2.3) and statistical-parity
//!   difference.
//! * [`logistic`] — a from-scratch logistic-regression classifier serving
//!   as the decision rule `g(X)` (Figure 1) in the DI experiments and the
//!   hiring-pipeline example.
//!
//! ## Example
//!
//! Measure the `s|u`-conditional dependence of a simulated population
//! (non-zero by construction — this is what repair quenches):
//!
//! ```
//! use otr_data::SimulationSpec;
//! use otr_fairness::ConditionalDependence;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let data = SimulationSpec::paper_defaults()
//!     .sample_dataset(400, &mut rng)
//!     .unwrap();
//! let report = ConditionalDependence::default().evaluate(&data).unwrap();
//! assert!(report.aggregate() > 0.0);
//! ```

pub mod di;
pub mod e_metric;
pub mod error;
pub mod joint;
pub mod logistic;
pub mod wmetric;

pub use di::{conditional_disparate_impact, statistical_parity_difference, DiReport};
pub use e_metric::{ConditionalDependence, EReport};
pub use error::FairnessError;
pub use joint::JointDependence;
pub use logistic::LogisticRegression;
pub use wmetric::{WReport, WassersteinDependence};
