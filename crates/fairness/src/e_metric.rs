//! The paper's fairness measure: the `s|u`-dependence metric
//! `E_u = ½D(f(x|0,u)‖f(x|1,u)) + ½D(f(x|1,u)‖f(x|0,u))`
//! (Definition 2.4) and its `u`-expectation
//! `E = Σ_u Pr[u] E_u` (Equation 3), computed per feature.
//!
//! Estimation protocol (matching Section V): for each `(u, k)`, fit a
//! Gaussian KDE (Silverman bandwidth) to the `s = 0` and `s = 1`
//! sub-samples separately, evaluate both densities on a shared uniform
//! grid spanning the pooled range (padded by a multiple of the larger
//! bandwidth so tails are represented), normalize into pmfs, and take the
//! symmetrized KL. Lower `E` = fairer data; `E = 0` ⟺ the conditionals
//! coincide on the grid.

use serde::{Deserialize, Serialize};

use otr_data::{Dataset, GroupKey};
use otr_stats::kde::{Bandwidth, GaussianKde};
use otr_stats::sym_kl_divergence;

use crate::error::{FairnessError, Result};

/// Configuration for the `E` estimator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConditionalDependence {
    /// Number of grid points for the shared KDE evaluation grid.
    pub grid_size: usize,
    /// Grid padding in units of the larger Silverman bandwidth.
    pub padding_bandwidths: f64,
    /// Minimum observations required in each `(u, s)` subgroup.
    pub min_group_size: usize,
}

impl Default for ConditionalDependence {
    fn default() -> Self {
        Self {
            grid_size: 512,
            padding_bandwidths: 3.0,
            min_group_size: 5,
        }
    }
}

/// Result of an `E` evaluation on a data set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EReport {
    /// `E_{u,k}`: symmetrized KLD between the `s`-conditionals, indexed
    /// `[u][k]`.
    pub e_uk: Vec<Vec<f64>>,
    /// Empirical `Pr[u]` weights used for aggregation, indexed by `u`.
    pub pr_u: Vec<f64>,
    /// `E_k = Σ_u Pr[u] E_{u,k}` per feature — the rows of Tables I/II.
    pub e_per_feature: Vec<f64>,
}

impl EReport {
    /// Aggregate `E` over features (arithmetic mean of `E_k`) — the scalar
    /// plotted in Figures 3 and 4.
    pub fn aggregate(&self) -> f64 {
        if self.e_per_feature.is_empty() {
            return 0.0;
        }
        self.e_per_feature.iter().sum::<f64>() / self.e_per_feature.len() as f64
    }
}

impl ConditionalDependence {
    /// Evaluate `E` on a data set.
    ///
    /// # Errors
    /// * [`FairnessError::InsufficientGroup`] when an `(u, s)` subgroup has
    ///   fewer than `min_group_size` observations or is degenerate (zero
    ///   spread, so no KDE bandwidth exists).
    /// * [`FairnessError::InvalidParameter`] for a grid of fewer than 8
    ///   points.
    pub fn evaluate(&self, data: &Dataset) -> Result<EReport> {
        if self.grid_size < 8 {
            return Err(FairnessError::InvalidParameter {
                name: "grid_size",
                reason: format!("must be at least 8, got {}", self.grid_size),
            });
        }
        let d = data.dim();
        let pr_u1 = data.prob_u1();
        let pr_u = vec![1.0 - pr_u1, pr_u1];

        let mut e_uk = vec![vec![0.0; d]; 2];
        for u in 0..2u8 {
            for k in 0..d {
                e_uk[u as usize][k] = self.e_u_feature(data, u, k)?;
            }
        }
        let e_per_feature = (0..d)
            .map(|k| pr_u[0] * e_uk[0][k] + pr_u[1] * e_uk[1][k])
            .collect();
        Ok(EReport {
            e_uk,
            pr_u,
            e_per_feature,
        })
    }

    /// `E_u` for a single feature: the symmetrized KLD between the two
    /// `s`-conditional KDEs of feature `k` within group `u`.
    ///
    /// # Errors
    /// Same group-size and degeneracy requirements as [`Self::evaluate`].
    pub fn e_u_feature(&self, data: &Dataset, u: u8, k: usize) -> Result<f64> {
        let x0 = data.feature_column(GroupKey { u, s: 0 }, k)?;
        let x1 = data.feature_column(GroupKey { u, s: 1 }, k)?;
        for (s, xs) in [(0u8, &x0), (1u8, &x1)] {
            if xs.len() < self.min_group_size {
                return Err(FairnessError::InsufficientGroup {
                    group: format!("(u={u}, s={s}, k={k})"),
                    found: xs.len(),
                    needed: self.min_group_size,
                });
            }
        }
        let kde0 = GaussianKde::fit(&x0, Bandwidth::Silverman)?;
        let kde1 = GaussianKde::fit(&x1, Bandwidth::Silverman)?;

        // Shared evaluation grid over the pooled range, padded by
        // `padding_bandwidths` of the larger bandwidth.
        let pad = self.padding_bandwidths * kde0.bandwidth().max(kde1.bandwidth());
        let lo = x0.iter().chain(&x1).copied().fold(f64::INFINITY, f64::min) - pad;
        let hi = x0
            .iter()
            .chain(&x1)
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
            + pad;
        let grid: Vec<f64> = (0..self.grid_size)
            .map(|i| lo + (hi - lo) * i as f64 / (self.grid_size - 1) as f64)
            .collect();
        let p0 = kde0.evaluate(&grid);
        let p1 = kde1.evaluate(&grid);
        Ok(sym_kl_divergence(&p0, &p1)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otr_data::{LabelledPoint, SimulationSpec};
    use otr_stats::dist::{ContinuousDistribution, Normal};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Build a 1-feature dataset with s-conditional normals per u.
    fn build(rng: &mut StdRng, n_per_group: usize, mean_s0: f64, mean_s1: f64) -> Dataset {
        let mut pts = Vec::new();
        for u in 0..2u8 {
            for (s, mean) in [(0u8, mean_s0), (1u8, mean_s1)] {
                let dist = Normal::new(mean, 1.0).unwrap();
                for _ in 0..n_per_group {
                    pts.push(LabelledPoint {
                        x: vec![dist.sample(rng)],
                        s,
                        u,
                    });
                }
            }
        }
        Dataset::from_points(pts).unwrap()
    }

    #[test]
    fn identical_conditionals_give_small_e() {
        let mut rng = StdRng::seed_from_u64(1);
        let data = build(&mut rng, 2_000, 0.0, 0.0);
        let report = ConditionalDependence::default().evaluate(&data).unwrap();
        assert!(report.aggregate() < 0.05, "E = {}", report.aggregate());
    }

    #[test]
    fn separated_conditionals_give_large_e() {
        let mut rng = StdRng::seed_from_u64(2);
        let near = build(&mut rng, 2_000, 0.0, 0.3);
        let far = build(&mut rng, 2_000, 0.0, 2.0);
        let cd = ConditionalDependence::default();
        let e_near = cd.evaluate(&near).unwrap().aggregate();
        let e_far = cd.evaluate(&far).unwrap().aggregate();
        assert!(e_far > e_near * 3.0, "near {e_near}, far {e_far}");
        // Analytic sym-KL for N(0,1) vs N(2,1) is 2.0; the KDE plug-in
        // estimator should land in its vicinity at this sample size.
        assert!((1.2..4.0).contains(&e_far), "e_far = {e_far}");
    }

    #[test]
    fn aggregation_uses_pr_u_weights() {
        // Unbalanced u groups: Pr[u] weighting must hold exactly.
        let mut rng = StdRng::seed_from_u64(3);
        let mut pts = Vec::new();
        for (u, n) in [(0u8, 600usize), (1u8, 200usize)] {
            for s in 0..2u8 {
                let mean = if u == 0 { s as f64 * 1.5 } else { 0.0 };
                let dist = Normal::new(mean, 1.0).unwrap();
                for _ in 0..n {
                    pts.push(LabelledPoint {
                        x: vec![dist.sample(&mut rng)],
                        s,
                        u,
                    });
                }
            }
        }
        let data = Dataset::from_points(pts).unwrap();
        let report = ConditionalDependence::default().evaluate(&data).unwrap();
        let manual = report.pr_u[0] * report.e_uk[0][0] + report.pr_u[1] * report.e_uk[1][0];
        assert!((report.e_per_feature[0] - manual).abs() < 1e-12);
        // 1200 of 1600 points have u = 0.
        assert!((report.pr_u[0] - 0.75).abs() < 1e-12);
        // u=0 is the unfair group here.
        assert!(report.e_uk[0][0] > report.e_uk[1][0]);
    }

    #[test]
    fn insufficient_group_is_reported() {
        let mut pts = vec![
            LabelledPoint {
                x: vec![0.0],
                s: 0,
                u: 0,
            };
            3
        ];
        for i in 0..20 {
            pts.push(LabelledPoint {
                x: vec![i as f64 * 0.1],
                s: 1,
                u: 0,
            });
            pts.push(LabelledPoint {
                x: vec![i as f64 * 0.1],
                s: 0,
                u: 1,
            });
            pts.push(LabelledPoint {
                x: vec![i as f64 * 0.1],
                s: 1,
                u: 1,
            });
        }
        let data = Dataset::from_points(pts).unwrap();
        let err = ConditionalDependence::default().evaluate(&data);
        assert!(matches!(err, Err(FairnessError::InsufficientGroup { .. })));
    }

    #[test]
    fn rejects_tiny_grid() {
        let mut rng = StdRng::seed_from_u64(5);
        let data = build(&mut rng, 50, 0.0, 0.0);
        let cd = ConditionalDependence {
            grid_size: 4,
            ..Default::default()
        };
        assert!(cd.evaluate(&data).is_err());
    }

    #[test]
    fn paper_simulation_unrepaired_e_is_large() {
        // The Section V-A population: components separated by sqrt(2) in
        // u=0 and sqrt(2) in u=1; Table I reports unrepaired E_k ≈ 6-7.5
        // at nR=500-scale samples.
        let spec = SimulationSpec::paper_defaults();
        let mut rng = StdRng::seed_from_u64(7);
        let data = spec.sample_dataset(500, &mut rng).unwrap();
        let report = ConditionalDependence::default().evaluate(&data).unwrap();
        for k in 0..2 {
            assert!(
                report.e_per_feature[k] > 0.3,
                "E_{k} = {} unexpectedly small",
                report.e_per_feature[k]
            );
        }
    }

    #[test]
    fn report_serializes() {
        let mut rng = StdRng::seed_from_u64(9);
        let data = build(&mut rng, 100, 0.0, 1.0);
        let report = ConditionalDependence::default().evaluate(&data).unwrap();
        let json = serde_json::to_string(&report).unwrap();
        let back: EReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
