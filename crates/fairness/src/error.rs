//! Error type for fairness metrics and classifiers.

use std::fmt;

/// Errors produced by fairness estimation or classifier training.
#[derive(Debug)]
pub enum FairnessError {
    /// A group needed by the metric has no (or too few) observations.
    InsufficientGroup {
        /// Description of the missing group.
        group: String,
        /// Observations found.
        found: usize,
        /// Observations needed.
        needed: usize,
    },
    /// A parameter was outside its valid domain.
    InvalidParameter {
        /// Parameter name.
        name: &'static str,
        /// Violation description.
        reason: String,
    },
    /// An underlying statistics failure.
    Stats(otr_stats::StatsError),
    /// An underlying data failure.
    Data(otr_data::DataError),
}

impl fmt::Display for FairnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FairnessError::InsufficientGroup {
                group,
                found,
                needed,
            } => write!(
                f,
                "group {group} has {found} observations, need at least {needed}"
            ),
            FairnessError::InvalidParameter { name, reason } => {
                write!(f, "invalid parameter `{name}`: {reason}")
            }
            FairnessError::Stats(e) => write!(f, "statistics error: {e}"),
            FairnessError::Data(e) => write!(f, "data error: {e}"),
        }
    }
}

impl std::error::Error for FairnessError {}

impl From<otr_stats::StatsError> for FairnessError {
    fn from(e: otr_stats::StatsError) -> Self {
        FairnessError::Stats(e)
    }
}

impl From<otr_data::DataError> for FairnessError {
    fn from(e: otr_data::DataError) -> Self {
        FairnessError::Data(e)
    }
}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, FairnessError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = FairnessError::InsufficientGroup {
            group: "(u=1, s=0)".into(),
            found: 1,
            needed: 2,
        };
        assert!(e.to_string().contains("(u=1, s=0)"));
    }
}
