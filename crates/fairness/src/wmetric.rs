//! Wasserstein-based conditional-dependence measure — a robust
//! alternative to the paper's KDE-plug-in symmetrized KLD.
//!
//! Section II-B of the paper notes that empirical-probability proxies are
//! "subject to small-sample estimation errors"; the KLD plug-in `E` is
//! itself sensitive to tail/flooring conventions (see EXPERIMENTS.md,
//! "Reading the numbers"). The 1-D Wasserstein distance between the
//! `s|u`-conditional *empirical* feature distributions needs no density
//! estimation at all, is insensitive to tails, and is exactly the
//! geometry the OT repair optimizes — `W` after a perfect `t = ½`
//! barycentric repair is zero by construction.
//!
//! `W_u,k = W₂(F̂(x_k|0,u), F̂(x_k|1,u))`, aggregated as
//! `W_k = Σ_u Pr[u]·W_u,k` — the same shape as Definition 2.4/Equation 3
//! with the divergence swapped.

use serde::{Deserialize, Serialize};

use otr_data::{Dataset, GroupKey};
use otr_ot::wasserstein::w2;
use otr_ot::DiscreteDistribution;

use crate::error::{FairnessError, Result};

/// Configuration for the Wasserstein dependence measure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WassersteinDependence {
    /// Minimum observations per `(u, s)` subgroup.
    pub min_group_size: usize,
}

impl Default for WassersteinDependence {
    fn default() -> Self {
        Self { min_group_size: 2 }
    }
}

/// Result of a Wasserstein-dependence evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WReport {
    /// `W_{u,k}` indexed `[u][k]`.
    pub w_uk: Vec<Vec<f64>>,
    /// Empirical `Pr[u]` weights.
    pub pr_u: Vec<f64>,
    /// `W_k = Σ_u Pr[u]·W_{u,k}` per feature.
    pub w_per_feature: Vec<f64>,
}

impl WReport {
    /// Mean over features (scalar summary).
    pub fn aggregate(&self) -> f64 {
        if self.w_per_feature.is_empty() {
            return 0.0;
        }
        self.w_per_feature.iter().sum::<f64>() / self.w_per_feature.len() as f64
    }
}

impl WassersteinDependence {
    /// Evaluate `W` on a data set.
    ///
    /// # Errors
    /// Reports undersized `(u, s)` subgroups.
    pub fn evaluate(&self, data: &Dataset) -> Result<WReport> {
        let d = data.dim();
        let pr_u1 = data.prob_u1();
        let pr_u = vec![1.0 - pr_u1, pr_u1];
        let mut w_uk = vec![vec![0.0; d]; 2];
        for u in 0..2u8 {
            for k in 0..d {
                let x0 = data.feature_column(GroupKey { u, s: 0 }, k)?;
                let x1 = data.feature_column(GroupKey { u, s: 1 }, k)?;
                for (s, xs) in [(0u8, &x0), (1u8, &x1)] {
                    if xs.len() < self.min_group_size {
                        return Err(FairnessError::InsufficientGroup {
                            group: format!("(u={u}, s={s}, k={k})"),
                            found: xs.len(),
                            needed: self.min_group_size,
                        });
                    }
                }
                let mu = DiscreteDistribution::empirical(&x0).map_err(|e| {
                    FairnessError::InvalidParameter {
                        name: "empirical distribution",
                        reason: e.to_string(),
                    }
                })?;
                let nu = DiscreteDistribution::empirical(&x1).map_err(|e| {
                    FairnessError::InvalidParameter {
                        name: "empirical distribution",
                        reason: e.to_string(),
                    }
                })?;
                w_uk[u as usize][k] =
                    w2(&mu, &nu).map_err(|e| FairnessError::InvalidParameter {
                        name: "wasserstein",
                        reason: e.to_string(),
                    })?;
            }
        }
        let w_per_feature = (0..d)
            .map(|k| pr_u[0] * w_uk[0][k] + pr_u[1] * w_uk[1][k])
            .collect();
        Ok(WReport {
            w_uk,
            pr_u,
            w_per_feature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otr_data::{LabelledPoint, SimulationSpec};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn translation_dependence_equals_shift() {
        // s=1 features are s=0 features shifted by exactly 2.0: the
        // empirical W2 per group is ~2 regardless of the distribution.
        let mut rng = StdRng::seed_from_u64(1);
        let mut pts = Vec::new();
        use otr_stats::dist::{ContinuousDistribution, Normal};
        let base = Normal::new(0.0, 1.0).unwrap();
        for u in 0..2u8 {
            for _ in 0..2_000 {
                let v = base.sample(&mut rng);
                pts.push(LabelledPoint {
                    x: vec![v],
                    s: 0,
                    u,
                });
                pts.push(LabelledPoint {
                    x: vec![v + 2.0],
                    s: 1,
                    u,
                });
            }
        }
        let data = Dataset::from_points(pts).unwrap();
        let report = WassersteinDependence::default().evaluate(&data).unwrap();
        assert!((report.aggregate() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn paper_simulation_has_large_unrepaired_w() {
        // The repair-interaction side (W → 0 after repair) lives in the
        // workspace integration tests, since otr-fairness cannot depend
        // on otr-core.
        let spec = SimulationSpec::paper_defaults();
        let mut rng = StdRng::seed_from_u64(2);
        let data = spec.sample_dataset(3_000, &mut rng).unwrap();
        let wd = WassersteinDependence::default();
        let before = wd.evaluate(&data).unwrap().aggregate();
        // Components are sqrt(2) apart; per-feature gap is 1.
        assert!(before > 0.5, "unrepaired W = {before}");
    }

    #[test]
    fn identical_groups_near_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        use otr_stats::dist::{ContinuousDistribution, Normal};
        let base = Normal::new(1.0, 2.0).unwrap();
        let mut pts = Vec::new();
        for u in 0..2u8 {
            for s in 0..2u8 {
                for _ in 0..3_000 {
                    pts.push(LabelledPoint {
                        x: vec![base.sample(&mut rng)],
                        s,
                        u,
                    });
                }
            }
        }
        let data = Dataset::from_points(pts).unwrap();
        let report = WassersteinDependence::default().evaluate(&data).unwrap();
        // Sampling noise floor ~ n^{-1/2}.
        assert!(report.aggregate() < 0.15, "W = {}", report.aggregate());
    }

    #[test]
    fn undersized_group_reported() {
        let pts = vec![
            LabelledPoint {
                x: vec![0.0],
                s: 0,
                u: 0,
            },
            LabelledPoint {
                x: vec![1.0],
                s: 1,
                u: 0,
            },
            LabelledPoint {
                x: vec![0.5],
                s: 0,
                u: 1,
            },
            LabelledPoint {
                x: vec![1.5],
                s: 1,
                u: 1,
            },
        ];
        let data = Dataset::from_points(pts).unwrap();
        let wd = WassersteinDependence { min_group_size: 5 };
        assert!(matches!(
            wd.evaluate(&data),
            Err(FairnessError::InsufficientGroup { .. })
        ));
    }

    #[test]
    fn weighting_formula_exact() {
        let mut rng = StdRng::seed_from_u64(4);
        let spec = SimulationSpec::paper_defaults();
        let data = spec.sample_dataset(2_000, &mut rng).unwrap();
        let report = WassersteinDependence::default().evaluate(&data).unwrap();
        for k in 0..2 {
            let manual = report.pr_u[0] * report.w_uk[0][k] + report.pr_u[1] * report.w_uk[1][k];
            assert!((report.w_per_feature[k] - manual).abs() < 1e-12);
        }
    }
}
