//! A from-scratch logistic-regression classifier — the decision rule
//! `g(X)` of Figure 1, used to measure classifier-level fairness proxies
//! (disparate impact) before and after data repair.
//!
//! Training is full-batch gradient descent with L2 regularization and
//! feature standardization; adequate for the 2-feature experimental
//! settings of the paper and deliberately free of external dependencies.

use rand::Rng;
use serde::{Deserialize, Serialize};

use otr_data::Dataset;

use crate::error::{FairnessError, Result};

/// Training configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LogisticConfig {
    /// Gradient-descent learning rate.
    pub learning_rate: f64,
    /// Number of full-batch epochs.
    pub epochs: usize,
    /// L2 penalty strength.
    pub l2: f64,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        Self {
            learning_rate: 0.5,
            epochs: 500,
            l2: 1e-4,
        }
    }
}

/// A trained logistic-regression model with internal feature
/// standardization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LogisticRegression {
    /// Weights in standardized feature space.
    weights: Vec<f64>,
    /// Intercept.
    bias: f64,
    /// Per-feature training means (for standardization).
    means: Vec<f64>,
    /// Per-feature training SDs.
    sds: Vec<f64>,
}

fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl LogisticRegression {
    /// Train on feature rows `xs` with binary labels `ys`.
    ///
    /// # Errors
    /// Requires non-empty consistent-dimension input and labels in `{0,1}`.
    pub fn fit(xs: &[Vec<f64>], ys: &[u8], config: LogisticConfig) -> Result<Self> {
        if xs.is_empty() || xs.len() != ys.len() {
            return Err(FairnessError::InvalidParameter {
                name: "training data",
                reason: format!("{} rows vs {} labels", xs.len(), ys.len()),
            });
        }
        let d = xs[0].len();
        if d == 0 || xs.iter().any(|x| x.len() != d) {
            return Err(FairnessError::InvalidParameter {
                name: "features",
                reason: "rows must share a positive dimension".into(),
            });
        }
        if ys.iter().any(|&y| y > 1) {
            return Err(FairnessError::InvalidParameter {
                name: "labels",
                reason: "labels must be 0/1".into(),
            });
        }
        if !(config.learning_rate > 0.0) || config.epochs == 0 || config.l2 < 0.0 {
            return Err(FairnessError::InvalidParameter {
                name: "config",
                reason: "learning_rate > 0, epochs >= 1, l2 >= 0 required".into(),
            });
        }
        let n = xs.len() as f64;

        // Standardize features.
        let mut means = vec![0.0; d];
        let mut sds = vec![0.0; d];
        for x in xs {
            for (m, v) in means.iter_mut().zip(x) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        for x in xs {
            for k in 0..d {
                let c = x[k] - means[k];
                sds[k] += c * c;
            }
        }
        for s in &mut sds {
            *s = (*s / n).sqrt().max(1e-9);
        }
        let std_rows: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| {
                x.iter()
                    .enumerate()
                    .map(|(k, v)| (v - means[k]) / sds[k])
                    .collect()
            })
            .collect();

        let mut weights = vec![0.0; d];
        let mut bias = 0.0;
        let mut grad_w = vec![0.0; d];
        for _ in 0..config.epochs {
            grad_w.iter_mut().for_each(|g| *g = 0.0);
            let mut grad_b = 0.0;
            for (x, &y) in std_rows.iter().zip(ys) {
                let z = bias + weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>();
                let err = sigmoid(z) - y as f64;
                for (g, v) in grad_w.iter_mut().zip(x) {
                    *g += err * v;
                }
                grad_b += err;
            }
            for (w, g) in weights.iter_mut().zip(&grad_w) {
                *w -= config.learning_rate * (g / n + config.l2 * *w);
            }
            bias -= config.learning_rate * grad_b / n;
        }
        Ok(Self {
            weights,
            bias,
            means,
            sds,
        })
    }

    /// Train with `ŷ = 1` labels synthesized from a data set by a labeling
    /// function (convenience for the experiment harnesses).
    ///
    /// # Errors
    /// Same as [`Self::fit`].
    pub fn fit_dataset(
        data: &Dataset,
        mut label: impl FnMut(&otr_data::LabelledPoint) -> u8,
        config: LogisticConfig,
    ) -> Result<Self> {
        let xs: Vec<Vec<f64>> = data.points().iter().map(|p| p.x.clone()).collect();
        let ys: Vec<u8> = data.points().iter().map(&mut label).collect();
        Self::fit(&xs, &ys, config)
    }

    /// Predicted probability `Pr[Y=1 | x]`.
    ///
    /// # Errors
    /// Rejects a feature vector of the wrong dimension.
    pub fn predict_proba(&self, x: &[f64]) -> Result<f64> {
        if x.len() != self.weights.len() {
            return Err(FairnessError::InvalidParameter {
                name: "x",
                reason: format!("dimension {} (expected {})", x.len(), self.weights.len()),
            });
        }
        let z = self.bias
            + self
                .weights
                .iter()
                .zip(x)
                .enumerate()
                .map(|(k, (w, v))| w * (v - self.means[k]) / self.sds[k])
                .sum::<f64>();
        Ok(sigmoid(z))
    }

    /// Hard 0/1 prediction at threshold 0.5.
    ///
    /// # Errors
    /// Same as [`Self::predict_proba`].
    pub fn predict(&self, x: &[f64]) -> Result<u8> {
        Ok(u8::from(self.predict_proba(x)? >= 0.5))
    }

    /// Predictions for every point of a data set.
    ///
    /// # Errors
    /// Same as [`Self::predict_proba`].
    pub fn predict_dataset(&self, data: &Dataset) -> Result<Vec<u8>> {
        data.points().iter().map(|p| self.predict(&p.x)).collect()
    }

    /// Classification accuracy against labels produced by `label`.
    ///
    /// # Errors
    /// Same as [`Self::predict_proba`].
    pub fn accuracy(
        &self,
        data: &Dataset,
        mut label: impl FnMut(&otr_data::LabelledPoint) -> u8,
    ) -> Result<f64> {
        let mut correct = 0usize;
        for p in data.points() {
            if self.predict(&p.x)? == label(p) {
                correct += 1;
            }
        }
        Ok(correct as f64 / data.len() as f64)
    }

    /// Generate a linearly separable toy problem (for tests/examples).
    pub fn toy_problem<R: Rng + ?Sized>(n: usize, rng: &mut R) -> (Vec<Vec<f64>>, Vec<u8>) {
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for _ in 0..n {
            let x0: f64 = rng.gen_range(-2.0..2.0);
            let x1: f64 = rng.gen_range(-2.0..2.0);
            ys.push(u8::from(x0 + x1 > 0.0));
            xs.push(vec![x0, x1]);
        }
        (xs, ys)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn learns_linearly_separable_problem() {
        let mut rng = StdRng::seed_from_u64(1);
        let (xs, ys) = LogisticRegression::toy_problem(2_000, &mut rng);
        let model = LogisticRegression::fit(&xs, &ys, LogisticConfig::default()).unwrap();
        let correct = xs
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| model.predict(x).unwrap() == y)
            .count();
        let acc = correct as f64 / xs.len() as f64;
        assert!(acc > 0.97, "accuracy = {acc}");
    }

    #[test]
    fn probabilities_are_calibrated_direction() {
        let mut rng = StdRng::seed_from_u64(2);
        let (xs, ys) = LogisticRegression::toy_problem(2_000, &mut rng);
        let model = LogisticRegression::fit(&xs, &ys, LogisticConfig::default()).unwrap();
        let deep_pos = model.predict_proba(&[2.0, 2.0]).unwrap();
        let deep_neg = model.predict_proba(&[-2.0, -2.0]).unwrap();
        assert!(deep_pos > 0.95);
        assert!(deep_neg < 0.05);
    }

    #[test]
    fn rejects_invalid_inputs() {
        assert!(LogisticRegression::fit(&[], &[], LogisticConfig::default()).is_err());
        assert!(LogisticRegression::fit(&[vec![1.0]], &[0, 1], LogisticConfig::default()).is_err());
        assert!(LogisticRegression::fit(
            &[vec![1.0], vec![1.0, 2.0]],
            &[0, 1],
            LogisticConfig::default()
        )
        .is_err());
        assert!(LogisticRegression::fit(&[vec![1.0]], &[2], LogisticConfig::default()).is_err());
        let bad = LogisticConfig {
            learning_rate: 0.0,
            ..Default::default()
        };
        assert!(LogisticRegression::fit(&[vec![1.0]], &[1], bad).is_err());
    }

    #[test]
    fn predict_rejects_wrong_dimension() {
        let mut rng = StdRng::seed_from_u64(3);
        let (xs, ys) = LogisticRegression::toy_problem(100, &mut rng);
        let model = LogisticRegression::fit(&xs, &ys, LogisticConfig::default()).unwrap();
        assert!(model.predict(&[1.0]).is_err());
    }

    #[test]
    fn standardization_makes_scale_irrelevant() {
        let mut rng = StdRng::seed_from_u64(4);
        let (xs, ys) = LogisticRegression::toy_problem(2_000, &mut rng);
        let scaled: Vec<Vec<f64>> = xs
            .iter()
            .map(|x| vec![x[0] * 1000.0, x[1] * 0.001])
            .collect();
        let model = LogisticRegression::fit(&scaled, &ys, LogisticConfig::default()).unwrap();
        let correct = scaled
            .iter()
            .zip(&ys)
            .filter(|(x, &y)| model.predict(x).unwrap() == y)
            .count();
        assert!(correct as f64 / xs.len() as f64 > 0.97);
    }

    #[test]
    fn serde_round_trip() {
        let mut rng = StdRng::seed_from_u64(5);
        let (xs, ys) = LogisticRegression::toy_problem(200, &mut rng);
        let model = LogisticRegression::fit(&xs, &ys, LogisticConfig::default()).unwrap();
        let json = serde_json::to_string(&model).unwrap();
        let back: LogisticRegression = serde_json::from_str(&json).unwrap();
        // Compare behaviourally (serde_json may differ in the last ulp).
        for x in [[0.0, 0.0], [1.0, -1.0], [2.0, 2.0]] {
            let a = model.predict_proba(&x).unwrap();
            let b = back.predict_proba(&x).unwrap();
            assert!((a - b).abs() < 1e-12);
        }
    }
}
