//! Joint (multivariate) conditional-dependence measurement.
//!
//! The paper's `E` metric and repair are stratified per feature
//! (Section IV-A), which cannot see `s|u`-dependence that lives purely in
//! the *correlation structure* between features (Section VI flags this).
//! This module evaluates the same symmetrized-KLD dependence measure on
//! the **joint** d-variate `s|u`-conditional densities (`d ≥ 2`),
//! estimated by the product-kernel KDE of `otr_stats::kde_nd` on a
//! shared product grid. At `d = 2` every value is bitwise identical to
//! the original bivariate estimator (the n-D KDE pins bitwise equality
//! to `GaussianKde2d`, and the grid arithmetic here is unchanged).

use serde::{Deserialize, Serialize};

use otr_data::{Dataset, GroupKey};
use otr_stats::sym_kl_divergence;
use otr_stats::GaussianKdeNd;

use crate::error::{FairnessError, Result};

/// Configuration for the joint `E` estimator (`d ≥ 2` feature data sets).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JointDependence {
    /// Grid points per dimension (total grid = `grid_size^d`).
    pub grid_size: usize,
    /// Grid padding in units of the larger per-dimension bandwidth.
    pub padding_bandwidths: f64,
    /// Minimum observations per `(u, s)` subgroup.
    pub min_group_size: usize,
}

impl Default for JointDependence {
    fn default() -> Self {
        Self {
            grid_size: 64,
            padding_bandwidths: 3.0,
            min_group_size: 10,
        }
    }
}

impl JointDependence {
    /// Evaluate the joint `E = Σ_u Pr[u]·symKL(f(x|0,u) ‖ f(x|1,u))` on a
    /// `d ≥ 2`-feature data set.
    ///
    /// Mind the grid volume: the shared product grid has `grid_size^d`
    /// cells, so high-dimensional data wants a smaller `grid_size` than
    /// the default 64 (e.g. 16–24 at `d = 3`).
    ///
    /// # Errors
    /// Requires `dim >= 2`, adequately sized subgroups, and a grid of at
    /// least 8 points per dimension.
    pub fn evaluate(&self, data: &Dataset) -> Result<f64> {
        if data.dim() < 2 {
            return Err(FairnessError::InvalidParameter {
                name: "data",
                reason: format!("joint E needs d >= 2, got d = {}", data.dim()),
            });
        }
        if self.grid_size < 8 {
            return Err(FairnessError::InvalidParameter {
                name: "grid_size",
                reason: format!("must be at least 8, got {}", self.grid_size),
            });
        }
        let pr_u1 = data.prob_u1();
        let mut total = 0.0;
        for (u, pr_u) in [(0u8, 1.0 - pr_u1), (1u8, pr_u1)] {
            total += pr_u * self.e_u_joint(data, u)?;
        }
        Ok(total)
    }

    /// Joint `E_u` for one `u` group.
    ///
    /// # Errors
    /// Same requirements as [`Self::evaluate`].
    pub fn e_u_joint(&self, data: &Dataset, u: u8) -> Result<f64> {
        let d = data.dim();
        let mut coords: [Vec<Vec<f64>>; 2] = Default::default();
        for s in 0..2u8 {
            for k in 0..d {
                coords[s as usize].push(data.feature_column(GroupKey { u, s }, k)?);
            }
            if coords[s as usize][0].len() < self.min_group_size {
                return Err(FairnessError::InsufficientGroup {
                    group: format!("(u={u}, s={s})"),
                    found: coords[s as usize][0].len(),
                    needed: self.min_group_size,
                });
            }
        }
        let cols = |s: usize| coords[s].iter().map(Vec::as_slice).collect::<Vec<_>>();
        let kde0 = GaussianKdeNd::fit(&cols(0))?;
        let kde1 = GaussianKdeNd::fit(&cols(1))?;

        // Shared product grid per dimension, padded by bandwidths.
        let grid_axis = |k: usize, pad: f64| -> Vec<f64> {
            let lo = coords[0][k]
                .iter()
                .chain(&coords[1][k])
                .copied()
                .fold(f64::INFINITY, f64::min)
                - pad;
            let hi = coords[0][k]
                .iter()
                .chain(&coords[1][k])
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
                + pad;
            (0..self.grid_size)
                .map(|i| lo + (hi - lo) * i as f64 / (self.grid_size - 1) as f64)
                .collect()
        };
        let axes: Vec<Vec<f64>> = (0..d)
            .map(|k| {
                let pad = self.padding_bandwidths * kde0.bandwidth()[k].max(kde1.bandwidth()[k]);
                grid_axis(k, pad)
            })
            .collect();
        let axis_refs: Vec<&[f64]> = axes.iter().map(Vec::as_slice).collect();

        let p0 = kde0.evaluate_grid(&axis_refs);
        let p1 = kde1.evaluate_grid(&axis_refs);
        Ok(sym_kl_divergence(&p0, &p1)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use otr_data::{LabelledPoint, SimulationSpec};
    use otr_stats::linalg::Matrix;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn correlated_spec(rho0: f64, rho1: f64) -> SimulationSpec {
        let cov = |rho: f64| Matrix::from_rows(2, 2, vec![1.0, rho, rho, 1.0]).unwrap();
        SimulationSpec {
            // Identical means: all s|u dependence is in the correlation.
            means: [
                [vec![0.0, 0.0], vec![0.0, 0.0]],
                [vec![0.0, 0.0], vec![0.0, 0.0]],
            ],
            sigma: 1.0,
            covs: Some([[cov(rho0), cov(rho1)], [cov(rho0), cov(rho1)]]),
            pr_u0: 0.5,
            pr_s0_given_u: [0.4, 0.4],
        }
    }

    #[test]
    fn joint_e_sees_correlation_dependence_marginal_e_does_not() {
        use crate::e_metric::ConditionalDependence;
        let spec = correlated_spec(0.8, -0.8);
        let mut rng = StdRng::seed_from_u64(1);
        let data = spec.sample_dataset(4_000, &mut rng).unwrap();
        let marginal = ConditionalDependence::default()
            .evaluate(&data)
            .unwrap()
            .aggregate();
        let joint = JointDependence::default().evaluate(&data).unwrap();
        assert!(
            marginal < 0.05,
            "marginals are identical; marginal E = {marginal}"
        );
        assert!(
            joint > 10.0 * marginal.max(0.01),
            "joint E ({joint}) must dominate marginal E ({marginal})"
        );
    }

    #[test]
    fn joint_e_near_zero_for_identical_conditionals() {
        let spec = correlated_spec(0.5, 0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let data = spec.sample_dataset(4_000, &mut rng).unwrap();
        let joint = JointDependence::default().evaluate(&data).unwrap();
        // 2-D KDE plug-in estimators carry more small-sample bias than the
        // 1-D one; 0.1 is comfortably below any real dependence signal.
        assert!(joint < 0.1, "joint E = {joint}");
    }

    #[test]
    fn d2_is_bitwise_identical_to_the_bivariate_estimator() {
        // Replicate the pre-generalization 2-D pipeline with
        // `GaussianKde2d` verbatim and pin exact equality: routing the
        // joint E through `GaussianKdeNd` must not move a single bit on
        // 2-feature data.
        use otr_data::GroupKey;
        use otr_stats::GaussianKde2d;

        let spec = correlated_spec(0.6, -0.2);
        let mut rng = StdRng::seed_from_u64(7);
        let data = spec.sample_dataset(600, &mut rng).unwrap();
        let cfg = JointDependence::default();

        let pr_u1 = data.prob_u1();
        let mut expected = 0.0;
        for (u, pr_u) in [(0u8, 1.0 - pr_u1), (1u8, pr_u1)] {
            let mut coords: [[Vec<f64>; 2]; 2] = Default::default();
            for s in 0..2u8 {
                for k in 0..2usize {
                    coords[s as usize][k] = data.feature_column(GroupKey { u, s }, k).unwrap();
                }
            }
            let kde0 = GaussianKde2d::fit(&coords[0][0], &coords[0][1]).unwrap();
            let kde1 = GaussianKde2d::fit(&coords[1][0], &coords[1][1]).unwrap();
            let grid_axis = |k: usize, pad: f64| -> Vec<f64> {
                let lo = coords[0][k]
                    .iter()
                    .chain(&coords[1][k])
                    .copied()
                    .fold(f64::INFINITY, f64::min)
                    - pad;
                let hi = coords[0][k]
                    .iter()
                    .chain(&coords[1][k])
                    .copied()
                    .fold(f64::NEG_INFINITY, f64::max)
                    + pad;
                (0..cfg.grid_size)
                    .map(|i| lo + (hi - lo) * i as f64 / (cfg.grid_size - 1) as f64)
                    .collect()
            };
            let pad_x = cfg.padding_bandwidths * kde0.bandwidth().0.max(kde1.bandwidth().0);
            let pad_y = cfg.padding_bandwidths * kde0.bandwidth().1.max(kde1.bandwidth().1);
            let gx = grid_axis(0, pad_x);
            let gy = grid_axis(1, pad_y);
            let p0 = kde0.evaluate_grid(&gx, &gy);
            let p1 = kde1.evaluate_grid(&gx, &gy);
            expected += pr_u * sym_kl_divergence(&p0, &p1).unwrap();
        }

        let got = cfg.evaluate(&data).unwrap();
        assert_eq!(
            got.to_bits(),
            expected.to_bits(),
            "d = 2 joint E moved: {got} vs {expected}"
        );
    }

    #[test]
    fn evaluates_three_feature_data() {
        // 3 features; the s|u dependence lives in the x0–x1 correlation
        // block, the third feature is independent noise. The d = 3 joint
        // E must still see the dependence.
        let cov = |rho: f64| {
            Matrix::from_rows(3, 3, vec![1.0, rho, 0.0, rho, 1.0, 0.0, 0.0, 0.0, 1.0]).unwrap()
        };
        let zeros = || vec![0.0, 0.0, 0.0];
        let spec = SimulationSpec {
            means: [[zeros(), zeros()], [zeros(), zeros()]],
            sigma: 1.0,
            covs: Some([[cov(0.8), cov(-0.8)], [cov(0.8), cov(-0.8)]]),
            pr_u0: 0.5,
            pr_s0_given_u: [0.4, 0.4],
        };
        let mut rng = StdRng::seed_from_u64(11);
        let data = spec.sample_dataset(2_000, &mut rng).unwrap();
        let cfg = JointDependence {
            grid_size: 16,
            ..JointDependence::default()
        };
        let dependent = cfg.evaluate(&data).unwrap();
        assert!(
            dependent > 0.1,
            "d = 3 joint E missed dependence: {dependent}"
        );

        let same = SimulationSpec {
            covs: Some([[cov(0.5), cov(0.5)], [cov(0.5), cov(0.5)]]),
            ..spec
        };
        let mut rng = StdRng::seed_from_u64(12);
        let null = same.sample_dataset(2_000, &mut rng).unwrap();
        let independent = cfg.evaluate(&null).unwrap();
        assert!(
            dependent > 5.0 * independent.max(0.01),
            "dependent E ({dependent}) must dominate null E ({independent})"
        );
    }

    #[test]
    fn rejects_wrong_dimension_and_tiny_groups() {
        let one_d = Dataset::from_points(vec![
            LabelledPoint {
                x: vec![0.0],
                s: 0,
                u: 0,
            };
            20
        ])
        .unwrap();
        assert!(JointDependence::default().evaluate(&one_d).is_err());

        let spec = SimulationSpec::paper_defaults();
        let mut rng = StdRng::seed_from_u64(3);
        let small = spec.sample_dataset(20, &mut rng).unwrap();
        assert!(JointDependence::default().evaluate(&small).is_err());
    }
}
