//! `#[derive(Serialize, Deserialize)]` for the workspace-local serde
//! stand-in.
//!
//! Implemented directly on `proc_macro::TokenStream` (no `syn`/`quote`
//! available offline). Supports exactly the shapes this workspace uses:
//! non-generic structs with named fields, tuple structs, and enums with
//! unit / tuple / struct variants, plus the `#[serde(skip)]` and
//! `#[serde(default)]` field attributes. Anything else is rejected with a
//! compile-time panic rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    skip: bool,
    default: bool,
}

#[derive(Debug)]
enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<Field>),
}

struct Parsed {
    name: String,
    shape: Shape,
}

// ---------------------------------------------------------------------------
// Token-level parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == word {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    /// Consume leading attributes, returning (skip, default) from any
    /// `#[serde(...)]` among them.
    fn eat_attrs(&mut self) -> (bool, bool) {
        let mut skip = false;
        let mut default = false;
        while self.eat_punct('#') {
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    if let Some(TokenTree::Ident(id)) = inner.first() {
                        if id.to_string() == "serde" {
                            let args = match inner.get(1) {
                                Some(TokenTree::Group(args))
                                    if args.delimiter() == Delimiter::Parenthesis =>
                                {
                                    args.stream().to_string()
                                }
                                _ => panic!("malformed #[serde] attribute"),
                            };
                            for arg in args.split(',') {
                                match arg.trim() {
                                    "skip" => skip = true,
                                    "default" => default = true,
                                    other => panic!(
                                        "unsupported serde attribute `{other}` \
                                         (vendored serde_derive supports only \
                                         `skip` and `default`)"
                                    ),
                                }
                            }
                        }
                    }
                }
                _ => panic!("expected bracketed attribute body after `#`"),
            }
        }
        (skip, default)
    }

    /// Consume an optional visibility qualifier (`pub`, `pub(crate)`, ...).
    fn eat_vis(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Skip a field's type: everything up to a `,` outside any `<...>`
    /// generic-argument nesting (or the end). Parens/brackets/braces are
    /// single `Group` tokens, so only angle brackets need depth tracking.
    fn skip_type(&mut self) {
        let mut angle_depth = 0usize;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    ',' if angle_depth == 0 => return,
                    '<' => angle_depth += 1,
                    '>' => angle_depth = angle_depth.saturating_sub(1),
                    _ => {}
                }
            }
            self.pos += 1;
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let (skip, default) = c.eat_attrs();
        c.eat_vis();
        let name = match c.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected field name, found {other:?}"),
        };
        assert!(c.eat_punct(':'), "expected `:` after field `{name}`");
        c.skip_type();
        c.eat_punct(',');
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0;
    while c.peek().is_some() {
        c.eat_attrs();
        c.eat_vis();
        c.skip_type();
        count += 1;
        c.eat_punct(',');
    }
    count
}

fn parse_input(input: TokenStream) -> Parsed {
    let mut c = Cursor::new(input);
    c.eat_attrs();
    c.eat_vis();

    let kind = match c.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match c.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("vendored serde_derive does not support generic type `{name}`");
        }
    }

    let shape = match kind.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body for `{name}`, found {other:?}"),
            };
            let mut vc = Cursor::new(body);
            let mut variants = Vec::new();
            while vc.peek().is_some() {
                vc.eat_attrs();
                let vname = match vc.next() {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    other => panic!("expected variant name, found {other:?}"),
                };
                let variant = match vc.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g.stream());
                        vc.pos += 1;
                        Variant::Struct(vname, fields)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let n = count_tuple_fields(g.stream());
                        vc.pos += 1;
                        Variant::Tuple(vname, n)
                    }
                    _ => Variant::Unit(vname),
                };
                variants.push(variant);
                vc.eat_punct(',');
            }
            Shape::Enum(variants)
        }
        other => panic!("cannot derive for `{other}` items"),
    };

    Parsed { name, shape }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::NamedStruct(fields) => {
            let mut s = String::from(
                "let mut entries: ::std::vec::Vec<(::std::string::String, ::serde::Value)> \
                 = ::std::vec::Vec::new();\n",
            );
            for f in fields.iter().filter(|f| !f.skip) {
                s.push_str(&format!(
                    "entries.push((\"{0}\".to_string(), \
                     ::serde::Serialize::to_value(&self.{0})));\n",
                    f.name
                ));
            }
            s.push_str("::serde::Value::Obj(entries)");
            s
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Arr(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    Variant::Tuple(vn, 1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => ::serde::Value::Obj(vec![(\
                         \"{vn}\".to_string(), ::serde::Serialize::to_value(__f0))]),\n"
                    )),
                    Variant::Tuple(vn, n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Obj(vec![(\
                             \"{vn}\".to_string(), ::serde::Value::Arr(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Variant::Struct(vn, fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let mut inner = String::from(
                            "let mut __inner: ::std::vec::Vec<(::std::string::String, \
                             ::serde::Value)> = ::std::vec::Vec::new();\n",
                        );
                        for f in fields.iter().filter(|f| !f.skip) {
                            inner.push_str(&format!(
                                "__inner.push((\"{0}\".to_string(), \
                                 ::serde::Serialize::to_value({0})));\n",
                                f.name
                            ));
                        }
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => {{ {inner} \
                             ::serde::Value::Obj(vec![(\"{vn}\".to_string(), \
                             ::serde::Value::Obj(__inner))]) }},\n",
                            binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn named_fields_ctor(ty: &str, fields: &[Field], source: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.skip {
            inits.push_str(&format!(
                "{}: ::std::default::Default::default(),\n",
                f.name
            ));
        } else if f.default {
            inits.push_str(&format!(
                "{0}: match {source}.get(\"{0}\") {{\n\
                     ::std::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?,\n\
                     ::std::option::Option::None => ::std::default::Default::default(),\n\
                 }},\n",
                f.name
            ));
        } else {
            inits.push_str(&format!(
                "{0}: match {source}.get(\"{0}\") {{\n\
                     ::std::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?,\n\
                     ::std::option::Option::None => return ::std::result::Result::Err(\
                         ::serde::Error::missing_field(\"{0}\", \"{ty}\")),\n\
                 }},\n",
                f.name
            ));
        }
    }
    inits
}

fn gen_deserialize(p: &Parsed) -> String {
    let name = &p.name;
    let body = match &p.shape {
        Shape::NamedStruct(fields) => {
            let inits = named_fields_ctor(name, fields, "__value");
            format!(
                "if __value.as_obj().is_none() {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(format!(\
                         \"expected object for {name}, got {{}}\", __value.kind())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
        Shape::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Shape::TupleStruct(n) => {
            let gets: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = __value.as_arr().ok_or_else(|| ::serde::Error::custom(\
                     \"expected array for {name}\"))?;\n\
                 if __arr.len() != {n} {{\n\
                     return ::std::result::Result::Err(::serde::Error::custom(format!(\
                         \"expected {n} elements for {name}, got {{}}\", __arr.len())));\n\
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                gets.join(", ")
            )
        }
        Shape::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Variant::Tuple(vn, 1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    Variant::Tuple(vn, n) => {
                        let gets: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                                 let __arr = __inner.as_arr().ok_or_else(|| \
                                     ::serde::Error::custom(\"expected array for \
                                     {name}::{vn}\"))?;\n\
                                 if __arr.len() != {n} {{\n\
                                     return ::std::result::Result::Err(\
                                         ::serde::Error::custom(\"wrong arity for \
                                         {name}::{vn}\"));\n\
                                 }}\n\
                                 ::std::result::Result::Ok({name}::{vn}({}))\n\
                             }},\n",
                            gets.join(", ")
                        ));
                    }
                    Variant::Struct(vn, fields) => {
                        let inits = named_fields_ctor(&format!("{name}::{vn}"), fields, "__inner");
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{\n\
                             {inits}}}),\n"
                        ));
                    }
                }
            }
            format!(
                "match __value {{\n\
                     ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => ::std::result::Result::Err(::serde::Error::custom(\
                             format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                     }},\n\
                     __v => {{\n\
                         let __obj = __v.as_obj().ok_or_else(|| ::serde::Error::custom(\
                             format!(\"expected variant object for {name}, got {{}}\", \
                             __v.kind())))?;\n\
                         if __obj.len() != 1 {{\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                                 \"expected single-key variant object for {name}\"));\n\
                         }}\n\
                         let (__tag, __inner) = &__obj[0];\n\
                         match __tag.as_str() {{\n\
                             {tagged_arms}\
                             __other => ::std::result::Result::Err(::serde::Error::custom(\
                                 format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) \
             -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}"
    )
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive generated invalid Deserialize impl")
}
