//! The JSON-like data model shared by `serde` and `serde_json`.

/// An owned JSON value. Objects preserve insertion order so serialized
/// artifacts are stable and diff-friendly.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Any JSON number (integers included; exact up to 2⁵³).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Arr(Vec<Value>),
    /// JSON object as an ordered key-value list.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Arr(_) => "array",
            Value::Obj(_) => "object",
        }
    }

    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a `Num`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an `Arr`.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The entry list, if this is an `Obj`.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Look up a key in an `Obj` (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }
}
