//! Workspace-local stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal serialization framework with the same surface the
//! code uses: `#[derive(Serialize, Deserialize)]` (with the
//! `#[serde(skip)]` and `#[serde(default)]` field attributes) and the
//! `serde_json` entry points.
//!
//! Instead of upstream's visitor-based data model, values serialize into
//! an owned JSON-like [`Value`] tree; `serde_json` renders and parses the
//! text form. Enum representation matches upstream's externally-tagged
//! default (`"Unit"` / `{"Variant": ...}`), so persisted artifacts look
//! the same as they would with real serde.

mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::Value;

use std::collections::{BTreeMap, HashMap};

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    /// Convert `self` into a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from a [`Value`] tree.
    ///
    /// # Errors
    /// Describes the first structural or type mismatch encountered.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

/// Error produced by deserialization (and by `serde_json` parsing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// An error with a custom message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }

    /// A required field was absent.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        Error(format!("missing field `{field}` while deserializing {ty}"))
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

// ---------------------------------------------------------------------------
// Serialize / Deserialize impls for the primitives and containers the
// workspace persists.
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, got {}", value.kind())))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, got {}", value.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Num(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(value)? as f32)
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = value.as_f64().ok_or_else(|| {
                    Error::custom(format!("expected integer, got {}", value.kind()))
                })?;
                if n.fract() != 0.0 || !n.is_finite() {
                    return Err(Error::custom(format!(
                        "expected integer, got non-integral number {n}"
                    )));
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(Error::custom(format!(
                        "integer {n} out of range for {}", stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::custom(format!("expected string, got {}", value.kind())))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_arr()
            .ok_or_else(|| Error::custom(format!("expected array, got {}", value.kind())))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Arr(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let arr = value
            .as_arr()
            .ok_or_else(|| Error::custom(format!("expected 2-tuple, got {}", value.kind())))?;
        if arr.len() != 2 {
            return Err(Error::custom(format!(
                "expected 2-tuple, got array of length {}",
                arr.len()
            )));
        }
        Ok((A::from_value(&arr[0])?, B::from_value(&arr[1])?))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_obj()
            .ok_or_else(|| Error::custom(format!("expected object, got {}", value.kind())))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialization is deterministic.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        value
            .as_obj()
            .ok_or_else(|| Error::custom(format!("expected object, got {}", value.kind())))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}
