//! Workspace-local stand-in for `criterion`.
//!
//! Provides the API shape the workspace's benches use (`Criterion`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`, `Throughput`,
//! `criterion_group!`, `criterion_main!`) with a simple measure-and-print
//! harness: adaptive iteration count targeting ~200 ms per benchmark,
//! median-of-batches timing, plain-text report. No statistics engine, no
//! HTML reports, no comparison against saved baselines.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared throughput of a benchmark, echoed in the report.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier from a function name and a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Identifier from a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Accepted for API compatibility; the vendored harness sizes runs
    /// by time, not sample count.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== group {name} ==");
        BenchmarkGroup {
            _c: self,
            name,
            throughput: None,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) {
        run_one(name, None, &mut f);
    }
}

/// A group of benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Declare the per-iteration throughput of subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Accepted for API compatibility; the vendored harness sizes runs
    /// by time, not sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark a closure against one input.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_one(&label, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Benchmark a closure with no input.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.into());
        run_one(&label, self.throughput, &mut f);
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the code
/// under measurement.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Measure `f`, running it `self.iters` times.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(label: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    // Calibrate: grow the iteration count until one batch takes >= 20 ms.
    let mut iters: u64 = 1;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(20) || iters >= 1 << 20 {
            break;
        }
        iters *= 4;
    }
    // Measure: median of 5 batches at the calibrated iteration count.
    let mut per_iter: Vec<f64> = (0..5)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_secs_f64() / iters as f64
        })
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let rate = match throughput {
        Some(Throughput::Elements(n)) => format!("  ({:.3} Melem/s)", n as f64 / median / 1e6),
        Some(Throughput::Bytes(n)) => {
            format!("  ({:.3} MiB/s)", n as f64 / median / (1 << 20) as f64)
        }
        None => String::new(),
    };
    println!("{label:<48} {}{rate}", fmt_time(median));
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:>9.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:>9.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:>9.2} ms", secs * 1e3)
    } else {
        format!("{secs:>9.2} s ")
    }
}

/// Declare a benchmark group runner, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(21) * 2));
    }
}
