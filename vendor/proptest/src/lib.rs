//! Workspace-local stand-in for `proptest`.
//!
//! Implements the slice of the proptest API the workspace's property
//! tests use: the [`Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_filter`, range and tuple strategies, `collection::vec`, the
//! [`proptest!`] macro, `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!`, and [`ProptestConfig::with_cases`].
//!
//! Differences from upstream: generation is driven by the workspace's
//! vendored xoshiro generator from a fixed seed (fully deterministic,
//! reproducible failures), and there is no shrinking — a failing case
//! reports its case index and assertion message only.

pub mod collection;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Why a generated case did not complete.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was rejected (`prop_assume!` failed or a filter missed);
    /// it does not count toward the case budget.
    Reject,
    /// A `prop_assert!` failed with the given message.
    Fail(String),
}

impl TestCaseError {
    /// A failed assertion with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generate one value; `None` means "rejected, try again".
    fn gen_value(&self, rng: &mut StdRng) -> Option<Self::Value>;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Reject generated values failing the predicate.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        reason: impl Into<String>,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            _reason: reason.into(),
            f,
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut StdRng) -> Option<Self::Value> {
        (**self).gen_value(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn gen_value(&self, rng: &mut StdRng) -> Option<U> {
        self.inner.gen_value(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;
    fn gen_value(&self, rng: &mut StdRng) -> Option<U::Value> {
        let mid = self.inner.gen_value(rng)?;
        (self.f)(mid).gen_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    _reason: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut StdRng) -> Option<S::Value> {
        self.inner.gen_value(rng).filter(|v| (self.f)(v))
    }
}

/// A strategy always yielding clones of one value.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut StdRng) -> Option<T> {
        Some(self.0.clone())
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> Option<$t> {
                Some(rng.gen_range(self.clone()))
            }
        }
    )*};
}
impl_range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn gen_value(&self, rng: &mut StdRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.gen_value(rng)?,)+))
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Drive one property: generate cases until `config.cases` are accepted
/// or the rejection budget is exhausted.
///
/// # Panics
/// Panics when a case fails (propagating the assertion message) or when
/// too many consecutive cases are rejected.
pub fn run_proptest<F>(config: ProptestConfig, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    // Fixed seed: deterministic, reproducible runs.
    let mut rng = StdRng::seed_from_u64(0x9E37_79B9_7F4A_7C15);
    let mut accepted: u32 = 0;
    let max_attempts = (config.cases as u64).saturating_mul(256).max(1024);
    let mut attempts: u64 = 0;
    while accepted < config.cases {
        attempts += 1;
        assert!(
            attempts <= max_attempts,
            "proptest: too many rejected cases ({} accepted of {} wanted after {} attempts)",
            accepted,
            config.cases,
            attempts
        );
        match case(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest case {} failed: {msg}", accepted + 1);
            }
        }
    }
}

/// Define property tests. Mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:pat_param in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                $crate::run_proptest(__config, |__rng| {
                    $(
                        let $arg = match $crate::Strategy::gen_value(&($strat), __rng) {
                            ::core::option::Option::Some(v) => v,
                            ::core::option::Option::None => {
                                return ::core::result::Result::Err(
                                    $crate::TestCaseError::Reject,
                                );
                            }
                        };
                    )+
                    $body
                    ::core::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Assert inside a property; failure reports the message without aborting
/// the whole process state.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Reject the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in -5.0f64..5.0, n in 2usize..=10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((2..=10).contains(&n));
        }

        #[test]
        fn combinators_compose(
            v in (1usize..5).prop_flat_map(|n| crate::collection::vec(0.0f64..1.0, n)),
            w in crate::collection::vec(0.0f64..1.0, 2..6),
        ) {
            prop_assert!((1..5).contains(&v.len()));
            prop_assert!((2..6).contains(&w.len()));
            prop_assume!(!v.is_empty());
            prop_assert_eq!(v.len(), v.len());
        }

        #[test]
        fn filter_rejects_without_hanging(
            x in (0.0f64..1.0).prop_filter("above half", |x| *x > 0.5),
        ) {
            prop_assert!(x > 0.5);
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_case_number() {
        crate::run_proptest(ProptestConfig::with_cases(4), |_rng| {
            crate::prop_assert!(1 + 1 == 3, "math broke");
            Ok(())
        });
    }
}
