//! Collection strategies (`proptest::collection`).

use crate::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Acceptable size arguments for [`vec()`](fn@vec): a fixed size or a range.
pub trait IntoSizeRange {
    /// Draw a concrete length.
    fn pick(&self, rng: &mut StdRng) -> usize;
}

impl IntoSizeRange for usize {
    fn pick(&self, _rng: &mut StdRng) -> usize {
        *self
    }
}

impl IntoSizeRange for core::ops::Range<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

impl IntoSizeRange for core::ops::RangeInclusive<usize> {
    fn pick(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.clone())
    }
}

/// Strategy for `Vec`s whose elements come from `element` and whose
/// length comes from `size`.
pub fn vec<S: Strategy, Z: IntoSizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
    VecStrategy { element, size }
}

/// See [`vec()`](fn@vec).
pub struct VecStrategy<S, Z> {
    element: S,
    size: Z,
}

impl<S: Strategy, Z: IntoSizeRange> Strategy for VecStrategy<S, Z> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut StdRng) -> Option<Vec<S::Value>> {
        let n = self.size.pick(rng);
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.element.gen_value(rng)?);
        }
        Some(out)
    }
}
