//! Sequence-related random operations.

use crate::Rng;

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type of the slice.
    type Item;

    /// Shuffle the slice in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` for an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..50).collect::<Vec<_>>(),
            "shuffle left input in order"
        );
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(2);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    // `RngCore` must stay usable through &mut references (the workspace
    // passes `&mut R` generically everywhere).
    #[test]
    fn rng_usable_through_mut_ref() {
        fn takes_rng<R: crate::RngCore + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(3);
        let x = takes_rng(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}
