//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of the `rand 0.8` API it actually uses:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`), [`rngs::StdRng`], and [`seq::SliceRandom`]
//! (`shuffle`, `choose`).
//!
//! `StdRng` is a xoshiro256++ generator seeded through SplitMix64 — a
//! different stream than upstream's ChaCha12, but deterministic,
//! well-distributed, and fully reproducible from a `u64` seed, which is
//! all the workspace's experiments require.

pub mod rngs;
pub mod seq;

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from raw bits via `Rng::gen`.
pub trait Standard: Sized {
    /// Draw one value from the standard distribution of `Self`
    /// (`[0, 1)` for floats, full range for integers, fair coin for bool).
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform on [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty f64 range");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

/// Lemire-style unbiased bounded integers from 64 random bits.
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling on the top zone to remove modulo bias.
    let zone = u64::MAX - (u64::MAX % bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty integer range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + bounded_u64(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Seed a new generator from another generator.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        Self::seed_from_u64(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let x = rng.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&x));
            let k = rng.gen_range(3usize..10);
            assert!((3..10).contains(&k));
            let k = rng.gen_range(0u64..=5);
            assert!(k <= 5);
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn bounded_integers_cover_their_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
