//! Workspace-local stand-in for `serde_json`: renders and parses the
//! [`serde::Value`] data model as standard JSON text.

pub use serde::{Error, Value};

use std::fmt::Write as _;

/// Serialize to compact JSON.
///
/// # Errors
/// Infallible for the vendored data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to human-readable, two-space-indented JSON.
///
/// # Errors
/// Infallible for the vendored data model (see [`to_string`]).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse JSON text into any [`serde::Deserialize`] type.
///
/// # Errors
/// Reports the first syntax error (with byte offset) or structural
/// mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value_str(s)?;
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => write_number(out, *n),
        Value::Str(s) => write_string(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Obj(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..(width * depth) {
            out.push(' ');
        }
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.is_nan() || n.is_infinite() {
        // JSON has no non-finite numbers; match serde_json's lossy `null`.
        out.push_str("null");
    } else if n.fract() == 0.0
        && n.abs() < 9.007_199_254_740_992e15
        && !(n == 0.0 && n.is_sign_negative())
    {
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{:?}` is Rust's shortest round-trip float formatting.
        let _ = write!(out, "{n:?}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(_) => self.number(),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs for astral-plane characters.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if !self.eat_literal("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: the input is a &str, so the bytes
                    // are valid; find the char boundary and copy it.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::custom(format!("invalid number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structured_values() {
        let v = Value::Obj(vec![
            ("name".into(), Value::Str("he said \"hi\"\n".into())),
            (
                "xs".into(),
                Value::Arr(vec![Value::Num(1.0), Value::Num(0.25)]),
            ),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            ("tiny".into(), Value::Num(3.9e-312)),
            ("neg".into(), Value::Num(-17.0)),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -0.0, 123456.789] {
            let text = to_string(&x).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(x.to_bits(), back.to_bits(), "{x} -> {text} -> {back}");
        }
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(to_string(&50usize).unwrap(), "50");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        let n: usize = from_str("50").unwrap();
        assert_eq!(n, 50);
        assert!(from_str::<usize>("50.5").is_err());
        assert!(from_str::<u8>("300").is_err());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        let s: String = from_str("\"\\u00e9\\ud83d\\ude00x\"").unwrap();
        assert_eq!(s, "é😀x");
    }
}
