//! Workspace-local stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches the parking_lot API shape the workspace uses: `lock()` returns
//! the guard directly (no `Result`); a poisoned std mutex is recovered
//! rather than propagated, mirroring parking_lot's no-poisoning policy.

use std::sync::TryLockError;

/// A mutual-exclusion lock with parking_lot's panic-free `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire the lock if it is free.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(guard) => Some(guard),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_mutate_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let m = m.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..1_000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8_000);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(5);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert_eq!(*m.try_lock().unwrap(), 5);
        assert_eq!(m.into_inner(), 5);
    }
}
