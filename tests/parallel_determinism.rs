//! The parallel-execution determinism contract, end to end through the
//! facade: `repair_dataset` output is **byte-identical** (compared at
//! the f64 bit level) across `OTR_THREADS` ∈ {1, 2, 7} and equal to the
//! sequential path, for both the randomized and the deterministic
//! mass-split configurations.

use ot_fair_repair::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (Dataset, Dataset) {
    let spec = SimulationSpec::paper_defaults();
    let mut rng = StdRng::seed_from_u64(5);
    let split = spec.generate(400, 1_200, &mut rng).unwrap();
    (split.research, split.archive)
}

/// Exact byte image of a dataset's feature values (f64 `==` would also
/// accept `-0.0 == 0.0`; the contract is stronger).
fn byte_image(data: &Dataset) -> Vec<u64> {
    data.points()
        .iter()
        .flat_map(|p| p.x.iter().map(|v| v.to_bits()))
        .collect()
}

/// The satellite contract, verbatim: vary the `OTR_THREADS` environment
/// variable (auto mode), byte-compare against the sequential reference.
/// All env mutation lives in this single test; the sibling test uses
/// explicit thread counts, so the two cannot race.
#[test]
fn byte_identical_across_otr_threads_env_for_both_mass_splits() {
    let (research, archive) = setup();
    for mass_split in [MassSplit::Randomized, MassSplit::Deterministic] {
        let mut cfg = RepairConfig::with_n_q(40);
        cfg.mass_split = mass_split;
        cfg.threads = 0; // auto: defer to OTR_THREADS
        let mut reference: Option<Vec<u64>> = None;
        for threads in ["1", "2", "7"] {
            std::env::set_var("OTR_THREADS", threads);
            let plan = RepairPlanner::new(cfg).design(&research).unwrap();
            let par = plan.repair_dataset_par(&archive, 42).unwrap();
            let seq = plan.repair_dataset_seeded(&archive, 42).unwrap();
            let par_bytes = byte_image(&par);
            assert_eq!(
                par_bytes,
                byte_image(&seq),
                "parallel != sequential ({mass_split:?}, OTR_THREADS={threads})"
            );
            match &reference {
                None => reference = Some(par_bytes),
                Some(r) => assert_eq!(
                    &par_bytes, r,
                    "thread-count-dependent output ({mass_split:?}, OTR_THREADS={threads})"
                ),
            }
        }
        std::env::remove_var("OTR_THREADS");
    }
}

/// Same contract driven through `RepairConfig::threads` (the CLI's
/// `--threads` path) instead of the environment.
#[test]
fn byte_identical_across_explicit_thread_counts() {
    let (research, archive) = setup();
    for mass_split in [MassSplit::Randomized, MassSplit::Deterministic] {
        let mut reference: Option<Vec<u64>> = None;
        for threads in [1usize, 2, 7] {
            let mut cfg = RepairConfig::with_n_q(40);
            cfg.mass_split = mass_split;
            cfg.threads = threads;
            let plan = RepairPlanner::new(cfg).design(&research).unwrap();
            let out = byte_image(&plan.repair_dataset_par(&archive, 7).unwrap());
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(&out, r, "({mass_split:?}, threads={threads})"),
            }
        }
    }
}

/// The partial-repair geodesic rides the same per-row streams, so the
/// same invariance holds along λ.
#[test]
fn partial_repair_byte_identical_across_thread_counts() {
    let (research, archive) = setup();
    let mut reference: Option<Vec<u64>> = None;
    for threads in [1usize, 2, 7] {
        let mut cfg = RepairConfig::with_n_q(30);
        cfg.threads = threads;
        let plan = RepairPlanner::new(cfg).design(&research).unwrap();
        let out = byte_image(&plan.repair_dataset_partial_par(&archive, 0.4, 13).unwrap());
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(&out, r, "threads={threads}"),
        }
    }
}
