//! The parallel-execution determinism contract, end to end through the
//! facade: `repair_dataset` output is **byte-identical** (compared at
//! the f64 bit level) across `OTR_THREADS` ∈ {1, 2, 7} and equal to the
//! sequential path, for both the randomized and the deterministic
//! mass-split configurations.

use std::sync::Mutex;

use ot_fair_repair::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Serializes the tests that mutate the shared `OTR_THREADS` process
/// environment, so each one observes exactly the thread counts it set
/// (a concurrent writer pinning one value would make the cross-leg
/// comparisons vacuous). Poisoning is ignored: a panicked holder has
/// already failed its own assertions.
static OTR_THREADS_ENV_LOCK: Mutex<()> = Mutex::new(());

fn setup() -> (Dataset, Dataset) {
    let spec = SimulationSpec::paper_defaults();
    let mut rng = StdRng::seed_from_u64(5);
    let split = spec.generate(400, 1_200, &mut rng).unwrap();
    (split.research, split.archive)
}

/// Exact byte image of a dataset's feature values (f64 `==` would also
/// accept `-0.0 == 0.0`; the contract is stronger).
fn byte_image(data: &Dataset) -> Vec<u64> {
    data.points()
        .iter()
        .flat_map(|p| p.x.iter().map(|v| v.to_bits()))
        .collect()
}

/// The satellite contract, verbatim: vary the `OTR_THREADS` environment
/// variable (auto mode), byte-compare against the sequential reference.
/// Env-mutating tests serialize on [`OTR_THREADS_ENV_LOCK`]; the other
/// siblings use explicit thread counts, so they cannot race.
#[test]
fn byte_identical_across_otr_threads_env_for_both_mass_splits() {
    let _env = OTR_THREADS_ENV_LOCK
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let (research, archive) = setup();
    for mass_split in [MassSplit::Randomized, MassSplit::Deterministic] {
        let mut cfg = RepairConfig::with_n_q(40);
        cfg.mass_split = mass_split;
        cfg.threads = 0; // auto: defer to OTR_THREADS
        let mut reference: Option<Vec<u64>> = None;
        for threads in ["1", "2", "7"] {
            std::env::set_var("OTR_THREADS", threads);
            let plan = RepairPlanner::new(cfg).design(&research).unwrap();
            let par = plan.repair_dataset_par(&archive, 42).unwrap();
            let seq = plan.repair_dataset_seeded(&archive, 42).unwrap();
            let par_bytes = byte_image(&par);
            assert_eq!(
                par_bytes,
                byte_image(&seq),
                "parallel != sequential ({mass_split:?}, OTR_THREADS={threads})"
            );
            match &reference {
                None => reference = Some(par_bytes),
                Some(r) => assert_eq!(
                    &par_bytes, r,
                    "thread-count-dependent output ({mass_split:?}, OTR_THREADS={threads})"
                ),
            }
        }
        std::env::remove_var("OTR_THREADS");
    }
}

/// Same contract driven through `RepairConfig::threads` (the CLI's
/// `--threads` path) instead of the environment.
#[test]
fn byte_identical_across_explicit_thread_counts() {
    let (research, archive) = setup();
    for mass_split in [MassSplit::Randomized, MassSplit::Deterministic] {
        let mut reference: Option<Vec<u64>> = None;
        for threads in [1usize, 2, 7] {
            let mut cfg = RepairConfig::with_n_q(40);
            cfg.mass_split = mass_split;
            cfg.threads = threads;
            let plan = RepairPlanner::new(cfg).design(&research).unwrap();
            let out = byte_image(&plan.repair_dataset_par(&archive, 7).unwrap());
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(&out, r, "({mass_split:?}, threads={threads})"),
            }
        }
    }
}

/// In-kernel determinism at joint scale: an `nQ = 24` joint design
/// crosses the `OTR_KERNEL_CELLS` threshold (`24⁴ = 331 776` kernel
/// cells), so the entropic-barycentre matvecs and the Sinkhorn scaling
/// updates run chunked — with the **ε-scaling schedule on** (an
/// explicit multi-stage geometric schedule, so every warm-started
/// stage and the transposed column phase are exercised) — and the
/// designed plan plus the repaired archive must still be
/// **byte-identical** across `OTR_THREADS ∈ {1, 2, 7}`.
///
/// Serialized on [`OTR_THREADS_ENV_LOCK`] with the other env-mutating
/// test: `OTR_THREADS` cannot change output bytes, but a concurrent
/// writer pinning one value would make this test's cross-leg
/// comparison vacuous.
#[test]
fn joint_repair_byte_identical_across_otr_threads_env() {
    let _env = OTR_THREADS_ENV_LOCK
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let spec = SimulationSpec::paper_defaults();
    let mut rng = StdRng::seed_from_u64(17);
    let split = spec.generate(300, 400, &mut rng).unwrap();
    let cfg = JointRepairConfig {
        n_q: 24,
        // Keeps max-cost/eps modest so the test converges at a
        // debug-build-friendly iteration count (byte identity is
        // eps-independent).
        epsilon: 0.25,
        // Three warm-started stages: 1.0 → 0.5 → 0.25.
        eps_scaling: Some(EpsSchedule::geometric(1.0, 0.5)),
        threads: 0, // auto: defer to OTR_THREADS
        ..JointRepairConfig::default()
    };
    let mut reference: Option<Vec<u64>> = None;
    for threads in ["1", "2", "7"] {
        std::env::set_var("OTR_THREADS", threads);
        let plan = JointRepairPlan::design(&split.research, cfg).unwrap();
        let out = byte_image(&plan.repair_dataset_par(&split.archive, 29).unwrap());
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(&out, r, "OTR_THREADS = {threads}"),
        }
    }
    std::env::remove_var("OTR_THREADS");
}

/// The joint contract at `d = 3`: a 3-feature `nQ = 8` joint design
/// (512 product states) under the **auto** kernel choice — so CI's
/// `OTR_KERNEL=dense` and `OTR_KERNEL=separable` legs both drive this
/// test through their representation — and the repaired archive must be
/// byte-identical across `OTR_THREADS ∈ {1, 2, 7}`. Env-mutating, so
/// serialized on [`OTR_THREADS_ENV_LOCK`].
#[test]
fn joint_3feature_repair_byte_identical_across_otr_threads_env() {
    let _env = OTR_THREADS_ENV_LOCK
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let spec = SimulationSpec {
        means: [
            [vec![-1.0, -1.0, -0.5], vec![0.0, 0.0, 0.0]],
            [vec![1.0, 1.0, 0.5], vec![0.0, 0.0, 0.0]],
        ],
        sigma: 1.0,
        covs: None,
        pr_u0: 0.5,
        pr_s0_given_u: [0.3, 0.1],
    };
    let mut rng = StdRng::seed_from_u64(19);
    let split = spec.generate(300, 400, &mut rng).unwrap();
    let cfg = JointRepairConfig {
        n_q: 8,
        epsilon: 0.25,
        eps_scaling: Some(EpsSchedule::geometric(1.0, 0.5)),
        threads: 0, // auto: defer to OTR_THREADS
        ..JointRepairConfig::default()
    };
    let mut reference: Option<Vec<u64>> = None;
    for threads in ["1", "2", "7"] {
        std::env::set_var("OTR_THREADS", threads);
        let plan = JointRepairPlan::design(&split.research, cfg).unwrap();
        let out = byte_image(&plan.repair_dataset_par(&split.archive, 31).unwrap());
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(&out, r, "OTR_THREADS = {threads}"),
        }
    }
    std::env::remove_var("OTR_THREADS");
}

/// The columnar (SoA) kernel satisfies the same contract: for every
/// `OTR_THREADS` setting, `repair_columnar_par` is **byte-identical**
/// to the sequential row-path reference `repair_dataset_seeded`, for
/// both mass-split configurations. Env-mutating, so serialized on
/// [`OTR_THREADS_ENV_LOCK`].
#[test]
fn columnar_repair_byte_identical_across_otr_threads_env() {
    let _env = OTR_THREADS_ENV_LOCK
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let (research, archive) = setup();
    let columnar = ColumnarDataset::from_dataset(&archive);
    for mass_split in [MassSplit::Randomized, MassSplit::Deterministic] {
        let mut cfg = RepairConfig::with_n_q(40);
        cfg.mass_split = mass_split;
        cfg.threads = 0; // auto: defer to OTR_THREADS
        for threads in ["1", "2", "7"] {
            std::env::set_var("OTR_THREADS", threads);
            let plan = RepairPlanner::new(cfg).design(&research).unwrap();
            let col = plan.repair_columnar_par(&columnar, 42).unwrap();
            let seq = plan.repair_dataset_seeded(&archive, 42).unwrap();
            assert_eq!(
                byte_image(&col.to_dataset()),
                byte_image(&seq),
                "columnar != sequential row path ({mass_split:?}, OTR_THREADS={threads})"
            );
            assert_eq!(col.s(), ColumnarDataset::from_dataset(&seq).s());
            assert_eq!(col.u(), ColumnarDataset::from_dataset(&seq).u());
        }
        std::env::remove_var("OTR_THREADS");
    }
}

/// The partial-repair geodesic rides the same per-row streams, so the
/// same invariance holds along λ.
#[test]
fn partial_repair_byte_identical_across_thread_counts() {
    let (research, archive) = setup();
    let mut reference: Option<Vec<u64>> = None;
    for threads in [1usize, 2, 7] {
        let mut cfg = RepairConfig::with_n_q(30);
        cfg.threads = threads;
        let plan = RepairPlanner::new(cfg).design(&research).unwrap();
        let out = byte_image(&plan.repair_dataset_partial_par(&archive, 0.4, 13).unwrap());
        match &reference {
            None => reference = Some(out),
            Some(r) => assert_eq!(&out, r, "threads={threads}"),
        }
    }
}
