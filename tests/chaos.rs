//! Seeded fault-injection chaos suite: a real `otrepaird` behind the
//! deterministic [`FaultProxy`], which truncates frames, disconnects
//! mid-frame, stalls, delays, and corrupts headers on a seed-driven
//! schedule.
//!
//! The contract under test, scenario by scenario: the daemon **never
//! aborts** under any injected fault, degradation is visible (error
//! codes + `Info` counters), and — the serving-determinism corollary —
//! every repair that *does* succeed under faults is byte-identical to
//! an offline `repair_columnar_par` with the same plan and seed. The
//! retry path must recover from at least one injected mid-frame
//! disconnect.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ot_fair_repair::data::{ColumnarDataset, Dataset, SimulationSpec};
use ot_fair_repair::repair::{RepairConfig, RepairPlan, RepairPlanner};
use ot_fair_repair::serve::protocol::{self, Request};
use ot_fair_repair::serve::{
    Client, ClientError, ErrorCode, Fault, FaultProxy, PlanKind, RetryPolicy, RetryingClient,
    ServeConfig, Server, ServerHandle, Span,
};

/// A running server on an OS-assigned loopback port.
struct TestServer {
    addr: SocketAddr,
    handle: ServerHandle,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TestServer {
    fn start(mut config: ServeConfig) -> Self {
        config.bind = "127.0.0.1:0".into();
        let server = Server::bind(&config).unwrap();
        let addr = server.local_addr().unwrap();
        let handle = server.handle().unwrap();
        let thread = std::thread::spawn(move || server.run().unwrap());
        Self {
            addr,
            handle,
            thread: Some(thread),
        }
    }

    fn client(&self) -> Client {
        Client::connect(self.addr).unwrap()
    }

    /// The daemon must still answer on a fresh direct connection — the
    /// "never aborts" assertion every scenario ends with. Transient
    /// rejections are retried: a just-closed connection may not have
    /// released its governor slot yet.
    fn assert_alive(&self) {
        let mut last = None;
        for _ in 0..50 {
            match self.client().ping() {
                Ok(()) => return,
                Err(e) if e.is_transient() => {
                    last = Some(e);
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => panic!("daemon answered a permanent error to ping: {e}"),
            }
        }
        panic!("daemon never recovered: {}", last.unwrap());
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn split_data(seed: u64, n_research: usize, n_archive: usize) -> (Dataset, ColumnarDataset) {
    let mut rng = StdRng::seed_from_u64(seed);
    let split = SimulationSpec::paper_defaults()
        .generate(n_research, n_archive, &mut rng)
        .unwrap();
    let archive = ColumnarDataset::from_dataset(&split.archive);
    (split.research, archive)
}

fn scalar_plan(research: &Dataset, n_q: usize) -> RepairPlan {
    RepairPlanner::new(RepairConfig::with_n_q(n_q))
        .design(research)
        .unwrap()
}

/// Bit-level equality of feature columns.
fn bits(columns: &[Vec<f64>]) -> Vec<Vec<u64>> {
    columns
        .iter()
        .map(|c| c.iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// A server preloaded with one plan, plus the offline reference bits
/// for `repair_seed` — the fixture every scenario starts from.
fn fixture(config: ServeConfig, repair_seed: u64) -> (TestServer, ColumnarDataset, Vec<Vec<u64>>) {
    let (research, archive) = split_data(31, 350, 220);
    let plan = scalar_plan(&research, 16);
    let server = TestServer::start(config);
    server
        .client()
        .load_plan(PlanKind::Scalar, "p", 1, &plan.to_json().unwrap())
        .unwrap();
    let offline = bits(
        plan.repair_columnar_par(&archive, repair_seed)
            .unwrap()
            .feature_columns(),
    );
    (server, archive, offline)
}

/// A retry policy tuned for tests: fast, deterministic, bounded.
fn test_policy(retries: u32, jitter_seed: u64) -> RetryPolicy {
    RetryPolicy {
        retries,
        backoff_base: Duration::from_millis(20),
        backoff_max: Duration::from_millis(200),
        jitter_seed,
        call_deadline: None,
    }
}

/// Scenario 1: request frames truncated at seeded offsets, over several
/// seeds. Every cut costs the faulted connection an EOF; the daemon
/// survives all of them and a direct client still gets the exact
/// offline bytes.
#[test]
fn truncated_request_frames_never_kill_the_daemon() {
    let (server, archive, offline) = fixture(ServeConfig::default(), 7);
    for proxy_seed in [101u64, 202, 303] {
        let mut proxy = FaultProxy::spawn(
            server.addr,
            vec![
                Fault::TruncateRequest(Span::new(1, 12)), // inside the header
                Fault::TruncateRequest(Span::new(12, 600)), // inside the payload
            ],
            proxy_seed,
        )
        .unwrap();
        for _ in 0..2 {
            let mut victim = Client::connect(proxy.addr()).unwrap();
            let err = victim.repair("p", 1, 7, &archive).unwrap_err();
            assert!(
                matches!(err, ClientError::Io(_)),
                "a truncated request must surface as transport loss, got {err}"
            );
        }
        proxy.shutdown();
        server.assert_alive();
    }
    let served = bits(&server.client().repair("p", 1, 7, &archive).unwrap().columns);
    assert_eq!(
        served, offline,
        "daemon state corrupted by truncated frames"
    );
}

/// Scenario 2 (acceptance criterion): a response cut off mid-frame is
/// recovered by the retrying client — the retry's fresh connection
/// falls off the fault script — and the recovered bytes are identical
/// to offline repair.
#[test]
fn retry_recovers_from_mid_frame_response_disconnect() {
    let (server, archive, offline) = fixture(ServeConfig::default(), 9);
    let proxy = FaultProxy::spawn(
        server.addr,
        // Cut the response inside its payload; connection 2 is clean.
        vec![Fault::TruncateResponse(Span::new(13, 900))],
        424_242,
    )
    .unwrap();
    let client = RetryingClient::new(proxy.addr().to_string(), test_policy(3, 1));
    let repaired = client.repair("p", 1, 9, &archive).unwrap();
    assert_eq!(
        bits(&repaired.columns),
        offline,
        "retried repair must serve the exact offline bytes"
    );
    assert!(
        proxy.connections() >= 2,
        "recovery must have taken a second (clean) connection"
    );
    server.assert_alive();
}

/// Scenario 3: a byte-stall mid-frame (slow loris through the proxy) is
/// killed by the server's frame deadline instead of pinning a worker,
/// and a concurrent healthy client never notices.
#[test]
fn slow_loris_stall_is_deadline_killed_not_pinned() {
    let (server, archive, offline) = fixture(
        ServeConfig {
            deadline_ms: 300,
            ..ServeConfig::default()
        },
        5,
    );
    let proxy = FaultProxy::spawn(
        server.addr,
        // Forward part of the request, then hold the socket open
        // silently — the deadline, not EOF, must end this.
        vec![Fault::StallRequest(Span::new(13, 500))],
        777,
    )
    .unwrap();
    let stalled = std::thread::spawn({
        let proxy_addr = proxy.addr();
        let archive = archive.clone();
        move || {
            let mut victim = Client::connect(proxy_addr).unwrap();
            victim.repair("p", 1, 5, &archive)
        }
    });
    // While the loris hangs, a healthy direct client gets its bytes.
    let served = bits(&server.client().repair("p", 1, 5, &archive).unwrap().columns);
    assert_eq!(served, offline);
    let err = stalled.join().unwrap().unwrap_err();
    assert_eq!(
        err.server_code(),
        Some(ErrorCode::DeadlineExceeded),
        "{err}"
    );
    assert!(server.handle.deadline_kills() >= 1);
    server.assert_alive();
}

/// Scenario 4: delayed writes *within* the deadline are just a slow
/// network — the repair must succeed, byte-identical.
#[test]
fn delayed_writes_within_deadline_succeed_byte_identical() {
    let (server, archive, offline) = fixture(
        ServeConfig {
            deadline_ms: 5_000,
            ..ServeConfig::default()
        },
        11,
    );
    let proxy = FaultProxy::spawn(
        server.addr,
        vec![Fault::DelayWrites {
            delay: Duration::from_millis(60),
            first_chunks: 4,
        }],
        888,
    )
    .unwrap();
    let mut client = Client::connect(proxy.addr()).unwrap();
    let repaired = client.repair("p", 1, 11, &archive).unwrap();
    assert_eq!(bits(&repaired.columns), offline);
    server.assert_alive();
}

/// Scenario 5: a garbage header (seeded bytes, high bit forced so the
/// magic can never match) gets `BadFrame` and a closed connection; the
/// daemon keeps serving.
#[test]
fn garbage_header_is_answered_bad_frame_and_contained() {
    let (server, archive, offline) = fixture(ServeConfig::default(), 3);
    for proxy_seed in [1u64, 2, 3] {
        let proxy = FaultProxy::spawn(
            server.addr,
            vec![Fault::GarbageHeader { bytes: 12 }],
            proxy_seed,
        )
        .unwrap();
        let mut victim = Client::connect(proxy.addr()).unwrap();
        let err = victim.ping().unwrap_err();
        match &err {
            ClientError::Server { .. } => {
                assert_eq!(err.server_code(), Some(ErrorCode::BadFrame), "{err}");
            }
            // The server may close before our (swallowed) ping's
            // response path settles; transport loss is equally valid.
            ClientError::Io(_) => {}
            other => panic!("unexpected failure shape: {other}"),
        }
        server.assert_alive();
    }
    let served = bits(&server.client().repair("p", 1, 3, &archive).unwrap().columns);
    assert_eq!(served, offline);
}

/// Scenario 6: past `--max-conns` the server rejects politely with
/// `Overloaded` (a transient code), and the retrying client rides the
/// rejection out until a slot frees.
#[test]
fn overload_rejection_is_polite_and_retry_recovers() {
    let server = TestServer::start(ServeConfig {
        max_conns: 1,
        ..ServeConfig::default()
    });
    // One served connection holds the only slot (a round trip proves
    // the server accounted for it).
    let mut hold = server.client();
    hold.ping().unwrap();

    // A plain client sees the polite rejection as Overloaded.
    let mut refused = Client::connect(server.addr).unwrap();
    let err = refused.ping().unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::Overloaded), "{err}");
    assert!(err.is_transient(), "Overloaded must classify as transient");

    // The retrying client outlasts the congestion: the slot frees
    // mid-backoff and a later attempt lands.
    let release = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(250));
        drop(hold);
    });
    let retrying = RetryingClient::new(
        server.addr.to_string(),
        RetryPolicy {
            retries: 8,
            backoff_base: Duration::from_millis(50),
            backoff_max: Duration::from_millis(200),
            jitter_seed: 6,
            call_deadline: Some(Duration::from_secs(10)),
        },
    );
    retrying.ping().unwrap();
    release.join().unwrap();
    assert!(server.handle.rejected_overload() >= 1);
    server.assert_alive();
}

/// Scenario 7: a panicking request under chaos costs `Internal` on its
/// own connection only; the registry keeps its plans and the daemon
/// keeps repairing — and the retrying client correctly refuses to
/// retry it (permanent).
#[test]
fn panic_isolation_under_chaos_keeps_registry_and_daemon() {
    let (server, archive, offline) = fixture(
        ServeConfig {
            chaos_panic_plan: Some("poison".into()),
            ..ServeConfig::default()
        },
        13,
    );
    let retrying = RetryingClient::new(server.addr.to_string(), test_policy(3, 2));
    let err = retrying.repair("poison", 0, 1, &archive).unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::Internal), "{err}");
    assert!(!err.is_transient(), "a panic is not worth retrying");
    assert_eq!(
        server.handle.panics_caught(),
        1,
        "exactly one panic — no retries"
    );

    let served = bits(
        &server
            .client()
            .repair("p", 1, 13, &archive)
            .unwrap()
            .columns,
    );
    assert_eq!(served, offline, "registry state survived the panic");
    server.assert_alive();
}

/// Scenario 8: a seeded sweep of disconnect-type faults (request cuts
/// and response cuts at seed-resolved offsets) through the retrying
/// client. Every call must eventually succeed, and every success must
/// be byte-identical to offline repair.
#[test]
fn seeded_fault_sweep_every_success_is_byte_identical() {
    let (server, archive, offline) = fixture(ServeConfig::default(), 17);
    for sweep_seed in [1_001u64, 2_002, 3_003, 4_004] {
        let script = if sweep_seed % 2 == 0 {
            vec![
                Fault::TruncateRequest(Span::new(1, 700)),
                Fault::TruncateResponse(Span::new(1, 700)),
            ]
        } else {
            vec![
                Fault::TruncateResponse(Span::new(1, 700)),
                Fault::TruncateRequest(Span::new(1, 700)),
            ]
        };
        let proxy = FaultProxy::spawn(server.addr, script, sweep_seed).unwrap();
        let client = RetryingClient::new(proxy.addr().to_string(), test_policy(4, sweep_seed));
        let repaired = client.repair("p", 1, 17, &archive).unwrap();
        assert_eq!(
            bits(&repaired.columns),
            offline,
            "sweep seed {sweep_seed}: recovered repair drifted from offline bytes"
        );
        server.assert_alive();
    }
}

/// Scenario 9: graceful shutdown drains an in-flight frame — a request
/// whose first bytes have arrived when shutdown fires is still read to
/// completion, answered, and only then closed.
#[test]
fn graceful_shutdown_drains_in_flight_frame() {
    let (server, _archive, _offline) = fixture(ServeConfig::default(), 1);
    let (msg_type, payload) = Request::EvictPlan {
        name: "p".into(),
        version: 1,
    }
    .encode();
    let header = protocol::encode_header(msg_type, payload.len());

    let mut raw = TcpStream::connect(server.addr).unwrap();
    // First half of the frame lands before shutdown...
    raw.write_all(&header).unwrap();
    raw.write_all(&payload[..payload.len() / 2]).unwrap();
    raw.flush().unwrap();
    // ...give the server a moment to observe it (arming the drain)...
    std::thread::sleep(Duration::from_millis(150));
    server.handle.shutdown();
    std::thread::sleep(Duration::from_millis(150));
    // ...and the rest arrives while the server is stopping.
    raw.write_all(&payload[payload.len() / 2..]).unwrap();

    // The drained frame still gets its real answer (the eviction ran).
    let mut resp_header = [0u8; protocol::HEADER_LEN];
    raw.read_exact(&mut resp_header).unwrap();
    assert_eq!(
        resp_header[5],
        protocol::response_type::PLAN_EVICTED,
        "in-flight frame must be answered, not dropped, during shutdown"
    );
    // After the drained answer the connection closes.
    let mut probe = [0u8; 1];
    assert!(matches!(raw.read(&mut probe), Ok(0) | Err(_)));
}
