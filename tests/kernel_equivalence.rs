//! Cross-kernel equivalence: the separable (`K₁ ⊗ … ⊗ K_d`)
//! Gibbs-kernel path must be a drop-in replacement for the dense path —
//! same math, different sum grouping — and must honour the workspace's
//! byte-identity-across-thread-counts determinism contract on its own.
//!
//! Three layers of pinning (ISSUE 5 acceptance, extended to `d` axes):
//!
//! 1. **Matvec level** (proptest): separable-vs-dense agreement within
//!    `1e-9` relative on random grids and ε — for the legacy two-axis
//!    representation and for random `d ∈ {2, 3, 4}` product grids —
//!    separable self byte-identity across thread counts, and bitwise
//!    agreement of the `d = 2` `SeparableNd` path with the legacy
//!    `Separable` path.
//! 2. **Barycentre level**: `entropic_barycentre_grid2d` under
//!    `dense` vs `separable` agrees within `1e-9` (L1 over the whole
//!    pmf, which sums to 1).
//! 3. **End to end**: an `nQ = 24` joint design + repair with the
//!    separable kernel forced on is byte-identical across
//!    `OTR_THREADS ∈ {1, 2, 7}`, and so is a 3-feature `nQ = 12`
//!    (1 728 product states) joint design + repair (the same shape as
//!    `tests/parallel_determinism.rs`, which pins the `auto` path under
//!    whatever `OTR_KERNEL` says).

use std::sync::Mutex;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use ot_fair_repair::ot::{entropic_barycentre_grid2d, BarycentreConfig, KernelRep};
use ot_fair_repair::prelude::*;

/// Serializes the tests that mutate the shared `OTR_THREADS` process
/// environment (cf. `tests/parallel_determinism.rs`).
static OTR_THREADS_ENV_LOCK: Mutex<()> = Mutex::new(());

/// Dense kernel over the flattened product grid — the reference the
/// separable representation is checked against.
fn dense_of_grid(gx: &[f64], gy: &[f64], eps: f64) -> KernelRep {
    let points: Vec<(f64, f64)> = gx
        .iter()
        .flat_map(|&x| gy.iter().map(move |&y| (x, y)))
        .collect();
    KernelRep::dense_square(points.len(), eps, 1, |i, j| {
        let dx = points[i].0 - points[j].0;
        let dy = points[i].1 - points[j].1;
        dx * dx + dy * dy
    })
}

/// Dense kernel over a flattened `d`-axis product grid (row-major, last
/// axis fastest) — the reference the n-d separable representation is
/// checked against.
fn dense_of_grid_nd(axes: &[Vec<f64>], eps: f64) -> KernelRep {
    let d = axes.len();
    let n: usize = axes.iter().map(Vec::len).product();
    let points: Vec<Vec<f64>> = (0..n)
        .map(|mut r| {
            let mut c = vec![0.0; d];
            for a in (0..d).rev() {
                let na = axes[a].len();
                c[a] = axes[a][r % na];
                r /= na;
            }
            c
        })
        .collect();
    KernelRep::dense_square(n, eps, 1, |i, j| {
        points[i]
            .iter()
            .zip(&points[j])
            .map(|(x, y)| (x - y) * (x - y))
            .sum()
    })
}

/// Random strictly increasing axis grid of `n` points in a bounded
/// range (monotonicity is not required by the kernel math, but mirrors
/// the grids the joint design builds).
fn arb_grid(n: core::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    (n, -3.0f64..3.0, 0.1f64..4.0).prop_map(|(len, lo, span)| {
        (0..len)
            .map(|i| lo + span * i as f64 / len.max(2) as f64)
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Separable-vs-dense matvec agreement within 1e-9 relative on
    /// random grids, ε, and input vectors.
    #[test]
    fn separable_matvec_matches_dense_within_1e9(
        gx in arb_grid(2usize..13),
        gy in arb_grid(2usize..13),
        eps in 0.02f64..2.0,
        seed in 0u64..1_000,
    ) {
        let n = gx.len() * gy.len();
        // A deterministic pseudo-random positive input vector.
        let v: Vec<f64> = (0..n)
            .map(|i| {
                let z = otr_zig(seed, i as u64);
                0.05 + (z % 1_000) as f64 / 1_000.0
            })
            .collect();
        let dense = dense_of_grid(&gx, &gy, eps);
        let sep = KernelRep::separable_grid2d(&gx, &gy, eps);
        let mut a = vec![0.0; n];
        let mut b = vec![0.0; n];
        let mut scratch = vec![0.0; n];
        dense.matvec(&v, &mut a, &mut scratch, 1);
        sep.matvec(&v, &mut b, &mut scratch, 1);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            prop_assert!(
                (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1e-300),
                "cell {}: dense {} vs separable {}", i, x, y
            );
        }
    }

    /// d-axis separable-vs-dense matvec agreement within 1e-9 relative
    /// on random `d ∈ {2, 3, 4}` product grids, ε, and input vectors —
    /// the n-d generalization of the two-axis case above.
    #[test]
    fn separable_nd_matvec_matches_dense_within_1e9(
        axes in proptest::collection::vec(arb_grid(2usize..6), 2usize..5),
        eps in 0.02f64..2.0,
        seed in 0u64..1_000,
    ) {
        let n: usize = axes.iter().map(Vec::len).product();
        let v: Vec<f64> = (0..n)
            .map(|i| {
                let z = otr_zig(seed, i as u64);
                0.05 + (z % 1_000) as f64 / 1_000.0
            })
            .collect();
        let dense = dense_of_grid_nd(&axes, eps);
        let refs: Vec<&[f64]> = axes.iter().map(Vec::as_slice).collect();
        let sep = KernelRep::separable_grid_nd(&refs, eps);
        let mut a = vec![0.0; n];
        let mut b = vec![0.0; n];
        let mut scratch = vec![0.0; n];
        dense.matvec(&v, &mut a, &mut scratch, 1);
        sep.matvec(&v, &mut b, &mut scratch, 1);
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            prop_assert!(
                (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1e-300),
                "d = {}, cell {}: dense {} vs separable {}", axes.len(), i, x, y
            );
        }
    }

    /// At `d = 2` the n-d representation must reproduce the legacy
    /// two-axis `Separable` matvec **to the bit**, for any thread
    /// count — the regression pin that lets every 2-feature production
    /// path route through `SeparableNd`.
    #[test]
    fn separable_nd_d2_bitwise_matches_legacy_separable(
        gx in arb_grid(2usize..13),
        gy in arb_grid(2usize..13),
        eps in 0.02f64..2.0,
    ) {
        let n = gx.len() * gy.len();
        let v: Vec<f64> = (0..n).map(|i| ((i * 17) % 29) as f64 / 29.0).collect();
        let legacy = KernelRep::separable_grid2d(&gx, &gy, eps);
        let nd = KernelRep::separable_grid_nd(&[&gx, &gy], eps);
        for threads in [1usize, 2, 7] {
            let mut a = vec![0.0; n];
            let mut b = vec![0.0; n];
            let mut scratch = vec![0.0; n];
            legacy.matvec(&v, &mut a, &mut scratch, threads);
            nd.matvec(&v, &mut b, &mut scratch, threads);
            let bits_a: Vec<u64> = a.iter().map(|x| x.to_bits()).collect();
            let bits_b: Vec<u64> = b.iter().map(|x| x.to_bits()).collect();
            prop_assert!(bits_a == bits_b, "bytes differ at threads = {}", threads);
        }
    }

    /// The n-d separable matvec's bytes never depend on the thread
    /// count either.
    #[test]
    fn separable_nd_matvec_byte_identical_across_threads(
        axes in proptest::collection::vec(arb_grid(2usize..6), 3usize..5),
        eps in 0.02f64..2.0,
    ) {
        let n: usize = axes.iter().map(Vec::len).product();
        let v: Vec<f64> = (0..n).map(|i| ((i * 13) % 31) as f64 / 31.0).collect();
        let refs: Vec<&[f64]> = axes.iter().map(Vec::as_slice).collect();
        let kernel = KernelRep::separable_grid_nd(&refs, eps);
        let mut reference: Option<Vec<u64>> = None;
        for threads in [1usize, 2, 7] {
            let mut out = vec![0.0; n];
            let mut scratch = vec![0.0; n];
            kernel.matvec(&v, &mut out, &mut scratch, threads);
            let bits: Vec<u64> = out.iter().map(|x| x.to_bits()).collect();
            match &reference {
                None => reference = Some(bits),
                Some(r) => prop_assert!(&bits == r, "bytes differ at threads = {}", threads),
            }
        }
    }

    /// The separable matvec's bytes never depend on the thread count.
    #[test]
    fn separable_matvec_byte_identical_across_threads(
        gx in arb_grid(2usize..13),
        gy in arb_grid(2usize..13),
        eps in 0.02f64..2.0,
    ) {
        let n = gx.len() * gy.len();
        let v: Vec<f64> = (0..n).map(|i| ((i * 13) % 31) as f64 / 31.0).collect();
        let kernel = KernelRep::separable_grid2d(&gx, &gy, eps);
        let mut reference: Option<Vec<u64>> = None;
        for threads in [1usize, 2, 7] {
            let mut out = vec![0.0; n];
            let mut scratch = vec![0.0; n];
            kernel.matvec(&v, &mut out, &mut scratch, threads);
            let bits: Vec<u64> = out.iter().map(|x| x.to_bits()).collect();
            match &reference {
                None => reference = Some(bits),
                Some(r) => prop_assert!(&bits == r, "bytes differ at threads = {}", threads),
            }
        }
    }
}

/// SplitMix64-style mixing for the proptest input vectors (local copy;
/// the contract here is only determinism, not stream quality).
fn otr_zig(base: u64, stream: u64) -> u64 {
    let mut z = base.wrapping_add(stream.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Separable-vs-dense **barycentre** agreement within 1e-9 (L1 over a
/// pmf of total mass 1), through the full Bregman iteration.
#[test]
fn separable_vs_dense_barycentre_within_1e9() {
    let gx: Vec<f64> = (0..12).map(|i| -1.5 + 0.27 * i as f64).collect();
    let gy: Vec<f64> = (0..10).map(|i| -1.2 + 0.31 * i as f64).collect();
    let pmf = |mx: f64, my: f64, sd: f64| -> Vec<f64> {
        let mut p: Vec<f64> = gx
            .iter()
            .flat_map(|&x| {
                gy.iter().map(move |&y| {
                    (-0.5 * (((x - mx) / sd).powi(2) + ((y - my) / sd).powi(2))).exp()
                })
            })
            .collect();
        let total: f64 = p.iter().sum();
        for v in &mut p {
            *v = (*v / total).max(1e-14);
        }
        p
    };
    let a = pmf(-0.4, -0.1, 0.5);
    let b = pmf(0.5, 0.8, 0.6);
    // A tight tolerance parks both iterate sequences well inside 1e-9
    // of the shared fixed point before they stop.
    let base = BarycentreConfig {
        tol: 1e-12,
        ..BarycentreConfig::new(0.12, 50_000)
    };
    let (dense, _) = entropic_barycentre_grid2d(
        &[&a, &b],
        &[0.5, 0.5],
        &gx,
        &gy,
        &BarycentreConfig {
            kernel: KernelChoice::Dense,
            ..base
        },
    )
    .unwrap();
    let (sep, _) = entropic_barycentre_grid2d(
        &[&a, &b],
        &[0.5, 0.5],
        &gx,
        &gy,
        &BarycentreConfig {
            kernel: KernelChoice::Separable,
            ..base
        },
    )
    .unwrap();
    let l1: f64 = dense.iter().zip(&sep).map(|(x, y)| (x - y).abs()).sum();
    assert!(l1 < 1e-9, "separable vs dense barycentre L1 = {l1:e}");
}

/// End-to-end joint dense-vs-separable agreement at design level: the
/// two representations must place the same transport cost on every
/// `(u, s)` plan to within solver tolerance.
#[test]
fn joint_design_transport_costs_agree_across_kernels() {
    let spec = SimulationSpec::paper_defaults();
    let mut rng = StdRng::seed_from_u64(23);
    let research = spec.sample_dataset(400, &mut rng).unwrap();
    let mut dense_cfg = JointRepairConfig {
        n_q: 8,
        epsilon: 0.25,
        kernel: KernelChoice::Dense,
        ..JointRepairConfig::default()
    };
    dense_cfg.eps_scaling = Some(EpsSchedule::geometric(1.0, 0.5));
    let sep_cfg = JointRepairConfig {
        kernel: KernelChoice::Separable,
        ..dense_cfg
    };
    let dense = JointRepairPlan::design(&research, dense_cfg).unwrap();
    let sep = JointRepairPlan::design(&research, sep_cfg).unwrap();
    for u in 0..2u8 {
        for s in 0..2u8 {
            let cd = dense.expected_transport_cost(u, s).unwrap();
            let cs = sep.expected_transport_cost(u, s).unwrap();
            assert!(
                (cd - cs).abs() < 1e-6 * (1.0 + cd.abs()),
                "(u={u}, s={s}): dense {cd} vs separable {cs}"
            );
        }
    }
}

/// The acceptance pin: an `nQ = 24` joint design + repair with the
/// separable kernel forced on — `24⁴ = 331 776` logical kernel cells,
/// every matvec running as two axis passes — is **byte-identical**
/// across `OTR_THREADS ∈ {1, 2, 7}`.
#[test]
fn separable_joint_repair_byte_identical_across_otr_threads_env() {
    let _env = OTR_THREADS_ENV_LOCK
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let spec = SimulationSpec::paper_defaults();
    let mut rng = StdRng::seed_from_u64(41);
    let split = spec.generate(300, 400, &mut rng).unwrap();
    let cfg = JointRepairConfig {
        n_q: 24,
        // Modest max-cost/eps keeps the debug-build iteration count
        // test-friendly; byte identity is eps-independent.
        epsilon: 0.25,
        eps_scaling: Some(EpsSchedule::geometric(1.0, 0.5)),
        kernel: KernelChoice::Separable,
        threads: 0, // auto: defer to OTR_THREADS
        ..JointRepairConfig::default()
    };
    let mut reference: Option<Vec<u64>> = None;
    for threads in ["1", "2", "7"] {
        std::env::set_var("OTR_THREADS", threads);
        let plan = JointRepairPlan::design(&split.research, cfg).unwrap();
        let out = plan.repair_dataset_par(&split.archive, 29).unwrap();
        let bytes: Vec<u64> = out
            .points()
            .iter()
            .flat_map(|p| p.x.iter().map(|v| v.to_bits()))
            .collect();
        match &reference {
            None => reference = Some(bytes),
            Some(r) => assert_eq!(&bytes, r, "OTR_THREADS = {threads}"),
        }
    }
    std::env::remove_var("OTR_THREADS");
}

/// Three-feature paper-style spec: the `d = 2` defaults extended with a
/// third feature whose `(u, s)`-conditional means follow the same
/// pattern.
fn spec_3features() -> SimulationSpec {
    SimulationSpec {
        means: [
            [vec![-1.0, -1.0, -0.5], vec![0.0, 0.0, 0.0]],
            [vec![1.0, 1.0, 0.5], vec![0.0, 0.0, 0.0]],
        ],
        sigma: 1.0,
        covs: None,
        pr_u0: 0.5,
        pr_s0_given_u: [0.3, 0.1],
    }
}

/// The n-d acceptance pin: a **3-feature** `nQ = 12` joint design
/// (1 728 product states — past the `OTR_KERNEL_CELLS` chunking
/// threshold at `1 728 × 36` separable work cells) with the separable
/// kernel forced on, plus the repair of the archive through it, is
/// **byte-identical** across `OTR_THREADS ∈ {1, 2, 7}`. The explicit
/// `KernelChoice::Separable` ignores `OTR_KERNEL`, so this pin holds on
/// both CI kernel legs.
#[test]
fn separable_nd_3feature_joint_repair_byte_identical_across_otr_threads_env() {
    let _env = OTR_THREADS_ENV_LOCK
        .lock()
        .unwrap_or_else(|e| e.into_inner());
    let mut rng = StdRng::seed_from_u64(43);
    let split = spec_3features().generate(400, 400, &mut rng).unwrap();
    let cfg = JointRepairConfig {
        n_q: 12,
        epsilon: 0.25,
        eps_scaling: Some(EpsSchedule::geometric(1.0, 0.5)),
        kernel: KernelChoice::Separable,
        threads: 0, // auto: defer to OTR_THREADS
        ..JointRepairConfig::default()
    };
    let mut reference: Option<Vec<u64>> = None;
    for threads in ["1", "2", "7"] {
        std::env::set_var("OTR_THREADS", threads);
        let (plan, report) = JointRepairPlan::design_with_report(&split.research, cfg).unwrap();
        assert_eq!(report.dims, 3);
        assert_eq!(report.kernel, "separable");
        let out = plan.repair_dataset_par(&split.archive, 29).unwrap();
        let bytes: Vec<u64> = out
            .points()
            .iter()
            .flat_map(|p| p.x.iter().map(|v| v.to_bits()))
            .collect();
        match &reference {
            None => reference = Some(bytes),
            Some(r) => assert_eq!(&bytes, r, "OTR_THREADS = {threads}"),
        }
    }
    std::env::remove_var("OTR_THREADS");
}

/// 3-feature dense-vs-separable design agreement: both representations
/// must place the same transport cost on every `(u, s)` plan to within
/// solver tolerance (the d = 3 analogue of the 2-feature test above,
/// small enough — 216 states — for the dense kernel to stay cheap).
#[test]
fn joint_3feature_design_transport_costs_agree_across_kernels() {
    let mut rng = StdRng::seed_from_u64(47);
    let research = spec_3features().sample_dataset(500, &mut rng).unwrap();
    let mut dense_cfg = JointRepairConfig {
        n_q: 6,
        epsilon: 0.25,
        kernel: KernelChoice::Dense,
        ..JointRepairConfig::default()
    };
    dense_cfg.eps_scaling = Some(EpsSchedule::geometric(1.0, 0.5));
    let sep_cfg = JointRepairConfig {
        kernel: KernelChoice::Separable,
        ..dense_cfg
    };
    let dense = JointRepairPlan::design(&research, dense_cfg).unwrap();
    let sep = JointRepairPlan::design(&research, sep_cfg).unwrap();
    for u in 0..2u8 {
        for s in 0..2u8 {
            let cd = dense.expected_transport_cost(u, s).unwrap();
            let cs = sep.expected_transport_cost(u, s).unwrap();
            assert!(
                (cd - cs).abs() < 1e-6 * (1.0 + cd.abs()),
                "(u={u}, s={s}): dense {cd} vs separable {cs}"
            );
        }
    }
}
