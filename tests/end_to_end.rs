//! Integration tests spanning all workspace crates: the full
//! design → persist → repair → evaluate pipeline on the paper's
//! simulated population.

use rand::rngs::StdRng;
use rand::SeedableRng;

use ot_fair_repair::prelude::*;

fn paper_split(seed: u64, n_r: usize, n_a: usize) -> SplitData {
    let spec = SimulationSpec::paper_defaults();
    let mut rng = StdRng::seed_from_u64(seed);
    spec.generate(n_r, n_a, &mut rng).unwrap()
}

#[test]
fn distributional_repair_quenches_archive_dependence() {
    let split = paper_split(1, 500, 5_000);
    let mut rng = StdRng::seed_from_u64(100);
    let plan = RepairPlanner::new(RepairConfig::with_n_q(50))
        .design(&split.research)
        .unwrap();
    let repaired = plan.repair_dataset(&split.archive, &mut rng).unwrap();

    let cd = ConditionalDependence::default();
    let before = cd.evaluate(&split.archive).unwrap().aggregate();
    let after = cd.evaluate(&repaired).unwrap().aggregate();
    // Paper Table I shape: off-sample repair reduces E by ~5-15x.
    assert!(
        after < before / 3.0,
        "repair must quench conditional dependence: {before} -> {after}"
    );
}

#[test]
fn on_sample_repair_beats_off_sample() {
    let split = paper_split(2, 500, 5_000);
    let mut rng = StdRng::seed_from_u64(200);
    let plan = RepairPlanner::new(RepairConfig::with_n_q(50))
        .design(&split.research)
        .unwrap();
    let rep_res = plan.repair_dataset(&split.research, &mut rng).unwrap();
    let rep_arc = plan.repair_dataset(&split.archive, &mut rng).unwrap();
    let cd = ConditionalDependence::default();
    let e_res = cd.evaluate(&rep_res).unwrap().aggregate();
    let e_arc = cd.evaluate(&rep_arc).unwrap().aggregate();
    // Paper: research (on-sample) repairs are cleaner than archive
    // (off-sample) repairs.
    assert!(
        e_res < e_arc,
        "on-sample E ({e_res}) should beat off-sample E ({e_arc})"
    );
}

#[test]
fn geometric_baseline_beats_distributional_on_sample() {
    let split = paper_split(3, 600, 1_000);
    let mut rng = StdRng::seed_from_u64(300);
    let plan = RepairPlanner::new(RepairConfig::with_n_q(50))
        .design(&split.research)
        .unwrap();
    let dist = plan.repair_dataset(&split.research, &mut rng).unwrap();
    let geo = GeometricRepair::default().repair(&split.research).unwrap();
    let cd = ConditionalDependence::default();
    let e_dist = cd.evaluate(&dist).unwrap().aggregate();
    let e_geo = cd.evaluate(&geo).unwrap().aggregate();
    // Paper Table I: geometric (point-wise, on-sample-only) edges out the
    // distributional repair on the data it was designed on.
    assert!(
        e_geo < e_dist * 1.5,
        "geometric ({e_geo}) should be no worse than ~distributional ({e_dist})"
    );
}

#[test]
fn plan_round_trips_through_json_and_still_repairs() {
    let split = paper_split(4, 400, 2_000);
    let plan = RepairPlanner::new(RepairConfig::with_n_q(40))
        .design(&split.research)
        .unwrap();
    let blob = plan.to_json().unwrap();
    let shipped = ot_fair_repair::repair::RepairPlan::from_json(&blob).unwrap();

    let mut rng = StdRng::seed_from_u64(400);
    let repaired = shipped.repair_dataset(&split.archive, &mut rng).unwrap();
    let cd = ConditionalDependence::default();
    let before = cd.evaluate(&split.archive).unwrap().aggregate();
    let after = cd.evaluate(&repaired).unwrap().aggregate();
    assert!(after < before / 2.0);
}

#[test]
fn streaming_repair_agrees_with_batch_statistics() {
    let split = paper_split(5, 500, 4_000);
    let plan = RepairPlanner::new(RepairConfig::with_n_q(50))
        .design(&split.research)
        .unwrap();

    let mut streamer = StreamingRepairer::new(plan.clone(), 42);
    let streamed =
        Dataset::from_points(streamer.repair_batch(split.archive.points()).unwrap()).unwrap();

    let mut rng = StdRng::seed_from_u64(42);
    let batch = plan.repair_dataset(&split.archive, &mut rng).unwrap();

    // Not point-identical (different RNG consumption patterns are
    // permitted), but statistically equivalent.
    let cd = ConditionalDependence::default();
    let e_stream = cd.evaluate(&streamed).unwrap().aggregate();
    let e_batch = cd.evaluate(&batch).unwrap().aggregate();
    assert!(
        (e_stream - e_batch).abs() < 0.1,
        "stream {e_stream} vs batch {e_batch}"
    );
}

#[test]
fn repair_preserves_structural_unfairness() {
    // The repair must quench (X !⊥ S)|U but leave Pr[s|u] — the
    // societal/structural part — untouched (Section II-A).
    let split = paper_split(6, 500, 5_000);
    let mut rng = StdRng::seed_from_u64(600);
    let plan = RepairPlanner::new(RepairConfig::with_n_q(50))
        .design(&split.research)
        .unwrap();
    let repaired = plan.repair_dataset(&split.archive, &mut rng).unwrap();
    for u in 0..2u8 {
        assert!(
            (repaired.prob_s0_given_u(u) - split.archive.prob_s0_given_u(u)).abs() < 1e-12,
            "Pr[s|u={u}] must be invariant under repair"
        );
    }
    assert!((repaired.prob_u1() - split.archive.prob_u1()).abs() < 1e-12);
}

#[test]
fn classifier_di_improves_after_repair() {
    use ot_fair_repair::fairness::logistic::LogisticConfig;
    let spec = SimulationSpec {
        pr_s0_given_u: [0.4, 0.3],
        ..SimulationSpec::paper_defaults()
    };
    let mut rng = StdRng::seed_from_u64(700);
    let split = spec.generate(600, 6_000, &mut rng).unwrap();
    let plan = RepairPlanner::new(RepairConfig::with_n_q(50))
        .design(&split.research)
        .unwrap();
    let repaired = plan.repair_dataset(&split.archive, &mut rng).unwrap();

    let label = |p: &LabelledPoint| u8::from(p.x[0] + p.x[1] > 0.5);
    let cfg = LogisticConfig::default();
    let m_raw = LogisticRegression::fit_dataset(&split.archive, label, cfg).unwrap();
    let m_rep = LogisticRegression::fit_dataset(&repaired, label, cfg).unwrap();

    let pool = spec.sample_dataset(8_000, &mut rng).unwrap();
    let pool_rep = plan.repair_dataset(&pool, &mut rng).unwrap();
    let di_raw =
        conditional_disparate_impact(&pool, &m_raw.predict_dataset(&pool).unwrap()).unwrap();
    let di_rep =
        conditional_disparate_impact(&pool, &m_rep.predict_dataset(&pool_rep).unwrap()).unwrap();

    // Worst-group DI distance from parity must shrink.
    let dist = |r: &DiReport| {
        r.di_per_u
            .iter()
            .map(|&d| (d.max(1.0 / d) - 1.0).abs())
            .fold(0.0, f64::max)
    };
    assert!(
        dist(&di_rep) < dist(&di_raw),
        "repair should move DI toward parity: raw {:?} vs repaired {:?}",
        di_raw.di_per_u,
        di_rep.di_per_u
    );
}

#[test]
fn partial_repair_frontier_is_monotone() {
    let split = paper_split(8, 500, 4_000);
    let mut rng = StdRng::seed_from_u64(800);
    let plan = RepairPlanner::new(RepairConfig::with_n_q(50))
        .design(&split.research)
        .unwrap();
    let cd = ConditionalDependence::default();
    let mut last_e = f64::INFINITY;
    for lambda in [0.0, 0.5, 1.0] {
        let repaired = plan
            .repair_dataset_partial(&split.archive, lambda, &mut rng)
            .unwrap();
        let e = cd.evaluate(&repaired).unwrap().aggregate();
        assert!(
            e < last_e + 0.05,
            "E should not increase along lambda: {last_e} -> {e} at lambda={lambda}"
        );
        last_e = e;
    }
}

#[test]
fn adult_like_pipeline_reproduces_table2_shape() {
    let mut rng = StdRng::seed_from_u64(900);
    let split = AdultSynth::default()
        .generate(4_000, 12_000, &mut rng)
        .unwrap();
    let plan = RepairPlanner::new(RepairConfig::with_n_q(120))
        .design(&split.research)
        .unwrap();
    let repaired = plan.repair_dataset(&split.archive, &mut rng).unwrap();

    let cd = ConditionalDependence::default();
    let before = cd.evaluate(&split.archive).unwrap();
    let after = cd.evaluate(&repaired).unwrap();
    // Hours/week (k=1) is the more gender-dependent feature...
    assert!(before.e_per_feature[1] > before.e_per_feature[0]);
    // ...and the repair reduces it substantially.
    assert!(after.e_per_feature[1] < before.e_per_feature[1] / 2.0);
}

#[test]
fn repair_drives_wasserstein_dependence_to_zero() {
    // The W-based dependence metric is the geometry the repair optimizes:
    // after a t=1/2 barycentric repair both conditionals sit on (nearly)
    // the same distribution, so the empirical W2 between them collapses.
    use ot_fair_repair::fairness::WassersteinDependence;
    let split = paper_split(12, 500, 5_000);
    let mut rng = StdRng::seed_from_u64(1200);
    let plan = RepairPlanner::new(RepairConfig::with_n_q(50))
        .design(&split.research)
        .unwrap();
    let repaired = plan.repair_dataset(&split.archive, &mut rng).unwrap();
    let wd = WassersteinDependence::default();
    let before = wd.evaluate(&split.archive).unwrap().aggregate();
    let after = wd.evaluate(&repaired).unwrap().aggregate();
    assert!(before > 0.5, "unrepaired W = {before}");
    assert!(
        after < before / 4.0,
        "repair must collapse W: {before} -> {after}"
    );
}

#[test]
fn kld_and_wasserstein_metrics_agree_on_ordering() {
    // Metric-robustness: both dependence measures must rank
    // unrepaired > partially repaired > fully repaired identically.
    use ot_fair_repair::fairness::WassersteinDependence;
    let split = paper_split(13, 500, 4_000);
    let mut rng = StdRng::seed_from_u64(1300);
    let plan = RepairPlanner::new(RepairConfig::with_n_q(50))
        .design(&split.research)
        .unwrap();
    let half = plan
        .repair_dataset_partial(&split.archive, 0.5, &mut rng)
        .unwrap();
    let full = plan.repair_dataset(&split.archive, &mut rng).unwrap();
    let cd = ConditionalDependence::default();
    let wd = WassersteinDependence::default();
    let e = [
        cd.evaluate(&split.archive).unwrap().aggregate(),
        cd.evaluate(&half).unwrap().aggregate(),
        cd.evaluate(&full).unwrap().aggregate(),
    ];
    let w = [
        wd.evaluate(&split.archive).unwrap().aggregate(),
        wd.evaluate(&half).unwrap().aggregate(),
        wd.evaluate(&full).unwrap().aggregate(),
    ];
    assert!(e[0] > e[1] && e[1] > e[2], "KLD ordering: {e:?}");
    assert!(w[0] > w[1] && w[1] > w[2], "W ordering: {w:?}");
}
