//! Integration tests of the `otrepair` CLI binary: the design → apply →
//! evaluate loop over real files in a temp directory.

use std::io::Write;
use std::process::Command;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ot_fair_repair::data::{write_labelled_csv, SimulationSpec};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_otrepair")
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("otrepair-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_csvs(dir: &std::path::Path, seed: u64) -> (String, String) {
    let spec = SimulationSpec::paper_defaults();
    let mut rng = StdRng::seed_from_u64(seed);
    let split = spec.generate(400, 1_500, &mut rng).unwrap();
    let research = dir.join("research.csv");
    let archive = dir.join("archive.csv");
    write_labelled_csv(
        std::io::BufWriter::new(std::fs::File::create(&research).unwrap()),
        &split.research,
    )
    .unwrap();
    write_labelled_csv(
        std::io::BufWriter::new(std::fs::File::create(&archive).unwrap()),
        &split.archive,
    )
    .unwrap();
    (
        research.to_string_lossy().into_owned(),
        archive.to_string_lossy().into_owned(),
    )
}

#[test]
fn design_apply_evaluate_loop() {
    let dir = tmp_dir("loop");
    let (research, archive) = write_csvs(&dir, 1);
    let plan = dir.join("plan.json").to_string_lossy().into_owned();
    let out = dir.join("repaired.csv").to_string_lossy().into_owned();

    let status = Command::new(bin())
        .args([
            "design",
            "--research",
            &research,
            "--out",
            &plan,
            "--nq",
            "40",
        ])
        .status()
        .unwrap();
    assert!(status.success(), "design failed");
    assert!(std::fs::metadata(&plan).unwrap().len() > 1_000);

    let status = Command::new(bin())
        .args([
            "apply", "--plan", &plan, "--data", &archive, "--out", &out, "--seed", "3",
        ])
        .status()
        .unwrap();
    assert!(status.success(), "apply failed");

    let before = Command::new(bin())
        .args(["evaluate", "--data", &archive])
        .output()
        .unwrap();
    let after = Command::new(bin())
        .args(["evaluate", "--data", &out])
        .output()
        .unwrap();
    assert!(before.status.success() && after.status.success());
    let grab_e = |stdout: &[u8]| -> f64 {
        String::from_utf8_lossy(stdout)
            .lines()
            .find_map(|l| {
                l.trim()
                    .strip_prefix("aggregate E = ")
                    .and_then(|v| v.parse().ok())
            })
            .expect("aggregate E line")
    };
    let e_before = grab_e(&before.stdout);
    let e_after = grab_e(&after.stdout);
    assert!(
        e_after < e_before / 2.0,
        "CLI repair must reduce E: {e_before} -> {e_after}"
    );
}

#[test]
fn apply_monge_mode_and_partial_conflict() {
    let dir = tmp_dir("monge");
    let (research, archive) = write_csvs(&dir, 2);
    let plan = dir.join("plan.json").to_string_lossy().into_owned();
    let out = dir.join("repaired.csv").to_string_lossy().into_owned();

    assert!(Command::new(bin())
        .args(["design", "--research", &research, "--out", &plan])
        .status()
        .unwrap()
        .success());
    assert!(Command::new(bin())
        .args(["apply", "--plan", &plan, "--data", &archive, "--out", &out, "--monge"])
        .status()
        .unwrap()
        .success());
    // --monge + --partial must be rejected.
    let conflicted = Command::new(bin())
        .args([
            "apply",
            "--plan",
            &plan,
            "--data",
            &archive,
            "--out",
            &out,
            "--monge",
            "--partial",
            "0.5",
        ])
        .output()
        .unwrap();
    assert!(!conflicted.status.success());
    assert!(String::from_utf8_lossy(&conflicted.stderr).contains("mutually exclusive"));
}

#[test]
fn apply_output_identical_for_any_thread_count() {
    let dir = tmp_dir("threads");
    let (research, archive) = write_csvs(&dir, 3);
    let plan = dir.join("plan.json").to_string_lossy().into_owned();

    assert!(Command::new(bin())
        .args([
            "design",
            "--research",
            &research,
            "--out",
            &plan,
            "--nq",
            "30"
        ])
        .status()
        .unwrap()
        .success());

    let mut outputs = Vec::new();
    for threads in ["1", "2", "7"] {
        let out = dir
            .join(format!("repaired-t{threads}.csv"))
            .to_string_lossy()
            .into_owned();
        assert!(Command::new(bin())
            .args([
                "apply",
                "--plan",
                &plan,
                "--data",
                &archive,
                "--out",
                &out,
                "--seed",
                "11",
                "--threads",
                threads,
            ])
            .status()
            .unwrap()
            .success());
        outputs.push(std::fs::read(&out).unwrap());
    }
    assert_eq!(outputs[0], outputs[1], "1 vs 2 threads");
    assert_eq!(outputs[0], outputs[2], "1 vs 7 threads");
}

/// `apply` runs once per `--layout` value (plus the default, which is
/// columnar) and every run writes the identical output file — the
/// columnar data path is byte-compatible with the row path end to end,
/// CSV in to CSV out.
#[test]
fn apply_layouts_produce_identical_output() {
    let dir = tmp_dir("layout");
    let (research, archive) = write_csvs(&dir, 5);
    let plan = dir.join("plan.json").to_string_lossy().into_owned();

    assert!(Command::new(bin())
        .args([
            "design",
            "--research",
            &research,
            "--out",
            &plan,
            "--nq",
            "30"
        ])
        .status()
        .unwrap()
        .success());

    let mut outputs = Vec::new();
    for layout in [None, Some("row"), Some("columnar")] {
        let tag = layout.unwrap_or("default");
        let out = dir
            .join(format!("repaired-{tag}.csv"))
            .to_string_lossy()
            .into_owned();
        let mut args = vec![
            "apply", "--plan", &plan, "--data", &archive, "--out", &out, "--seed", "11",
        ];
        if let Some(layout) = layout {
            args.extend(["--layout", layout]);
        }
        assert!(
            Command::new(bin()).args(&args).status().unwrap().success(),
            "apply --layout {tag} failed"
        );
        outputs.push(std::fs::read(&out).unwrap());
    }
    assert_eq!(outputs[0], outputs[1], "default vs --layout row");
    assert_eq!(outputs[0], outputs[2], "default vs --layout columnar");

    // An unknown layout is a usage error, not a silent default.
    let bad = Command::new(bin())
        .args([
            "apply",
            "--plan",
            &plan,
            "--data",
            &archive,
            "--out",
            "/dev/null",
            "--layout",
            "diagonal",
        ])
        .output()
        .unwrap();
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("--layout"));

    // The columnar path has no Monge/partial variants: asking for both
    // is rejected up front.
    let conflicted = Command::new(bin())
        .args([
            "apply",
            "--plan",
            &plan,
            "--data",
            &archive,
            "--out",
            "/dev/null",
            "--layout",
            "columnar",
            "--monge",
        ])
        .output()
        .unwrap();
    assert!(!conflicted.status.success());
    assert!(String::from_utf8_lossy(&conflicted.stderr).contains("--layout columnar"));
}

#[test]
fn joint_design_apply_loop_with_verbose_report() {
    let dir = tmp_dir("joint");
    let (research, archive) = write_csvs(&dir, 4);
    let plan = dir.join("joint-plan.json").to_string_lossy().into_owned();
    let out = dir
        .join("joint-repaired.csv")
        .to_string_lossy()
        .into_owned();

    // A coarse grid keeps the n_q² product-support solves test-friendly.
    let design = Command::new(bin())
        .args([
            "design",
            "--joint",
            "--research",
            &research,
            "--out",
            &plan,
            "--nq",
            "8",
            "--eps",
            "0.05",
            "--eps-scaling",
            "0.8:0.25",
            "--verbose",
        ])
        .output()
        .unwrap();
    assert!(design.status.success(), "joint design failed");
    let stderr = String::from_utf8_lossy(&design.stderr);
    // The --verbose design report surfaces the barycentre convergence
    // diagnostics and the ε-schedule stage stats.
    assert!(stderr.contains("joint design report"), "report: {stderr}");
    assert!(stderr.contains("barycentre"), "report: {stderr}");
    assert!(stderr.contains("per-stage eps:iters"), "report: {stderr}");
    assert!(stderr.contains("plan transport cost"), "report: {stderr}");
    assert!(std::fs::metadata(&plan).unwrap().len() > 1_000);

    assert!(Command::new(bin())
        .args([
            "apply", "--joint", "--plan", &plan, "--data", &archive, "--out", &out, "--seed", "5",
        ])
        .status()
        .unwrap()
        .success());
    let repaired = std::fs::read_to_string(&out).unwrap();
    assert_eq!(
        repaired.lines().count(),
        std::fs::read_to_string(&archive).unwrap().lines().count()
    );

    // Joint apply rejects the 1-D-only modes.
    let conflicted = Command::new(bin())
        .args([
            "apply", "--joint", "--plan", &plan, "--data", &archive, "--out", &out, "--monge",
        ])
        .output()
        .unwrap();
    assert!(!conflicted.status.success());
    // An invalid --eps-scaling spelling is a parse error, not a design.
    let bad = Command::new(bin())
        .args([
            "design",
            "--joint",
            "--research",
            &research,
            "--out",
            &plan,
            "--eps-scaling",
            "fast",
        ])
        .output()
        .unwrap();
    assert!(!bad.status.success());
    assert!(String::from_utf8_lossy(&bad.stderr).contains("eps-scaling"));

    // An invalid --kernel spelling too.
    let bad_kernel = Command::new(bin())
        .args([
            "design",
            "--joint",
            "--research",
            &research,
            "--out",
            &plan,
            "--kernel",
            "kronecker",
        ])
        .output()
        .unwrap();
    assert!(!bad_kernel.status.success());
    assert!(String::from_utf8_lossy(&bad_kernel.stderr).contains("kernel"));
}

#[test]
fn joint_verbose_report_names_kernel_and_single_stage() {
    let dir = tmp_dir("joint-verbose");
    let (research, _archive) = write_csvs(&dir, 6);
    let plan = dir.join("joint-plan.json").to_string_lossy().into_owned();

    // ε-scaling off: the per-stratum stage breakdown says so instead of
    // echoing a one-entry stage list; --kernel dense is reported back.
    let design = Command::new(bin())
        .args([
            "design",
            "--joint",
            "--research",
            &research,
            "--out",
            &plan,
            "--nq",
            "8",
            "--eps",
            "0.25",
            "--eps-scaling",
            "off",
            "--kernel",
            "dense",
            "--verbose",
        ])
        .output()
        .unwrap();
    assert!(design.status.success(), "joint design failed");
    let stderr = String::from_utf8_lossy(&design.stderr);
    assert!(
        stderr.contains("single stage (eps-scaling off)"),
        "report: {stderr}"
    );
    assert!(stderr.contains("kernel = dense"), "report: {stderr}");

    // The separable kernel designs the same grid shape successfully.
    let design = Command::new(bin())
        .args([
            "design",
            "--joint",
            "--research",
            &research,
            "--out",
            &plan,
            "--nq",
            "8",
            "--eps",
            "0.25",
            "--kernel",
            "separable",
            "--verbose",
        ])
        .output()
        .unwrap();
    assert!(design.status.success(), "separable joint design failed");
    let stderr = String::from_utf8_lossy(&design.stderr);
    assert!(stderr.contains("kernel = separable"), "report: {stderr}");
    assert!(std::fs::metadata(&plan).unwrap().len() > 1_000);
}

#[test]
fn helpful_errors_for_bad_inputs() {
    let unknown = Command::new(bin()).args(["frobnicate"]).output().unwrap();
    assert!(!unknown.status.success());
    assert!(String::from_utf8_lossy(&unknown.stderr).contains("unknown command"));

    let missing = Command::new(bin()).args(["design"]).output().unwrap();
    assert!(!missing.status.success());
    assert!(String::from_utf8_lossy(&missing.stderr).contains("--research"));

    let dir = tmp_dir("badcsv");
    let bad = dir.join("bad.csv");
    writeln!(std::fs::File::create(&bad).unwrap(), "a,b,c\n1,2,3").unwrap();
    let parse = Command::new(bin())
        .args(["evaluate", "--data", &bad.to_string_lossy()])
        .output()
        .unwrap();
    assert!(!parse.status.success());
    assert!(String::from_utf8_lossy(&parse.stderr).contains("header"));
}

/// Full service round trip through the binaries: boot `otrepaird` on a
/// loopback port, load a plan through `otrepair client`, repair an
/// archive over the wire, and require the CSV to be **byte-identical**
/// to an offline `otrepair apply` with the same plan and seed — the
/// serving determinism contract, end to end through real processes.
#[test]
fn served_repair_matches_offline_apply_byte_for_byte() {
    let daemon = env!("CARGO_BIN_EXE_otrepaird");
    let dir = tmp_dir("serve");
    let (research, archive) = write_csvs(&dir, 7);
    let plan = dir.join("plan.json").to_string_lossy().into_owned();
    let offline = dir.join("offline.csv").to_string_lossy().into_owned();
    let served = dir.join("served.csv").to_string_lossy().into_owned();
    let port_file = dir.join("port");

    assert!(Command::new(bin())
        .args([
            "design",
            "--research",
            &research,
            "--out",
            &plan,
            "--nq",
            "24"
        ])
        .status()
        .unwrap()
        .success());
    assert!(Command::new(bin())
        .args(["apply", "--plan", &plan, "--data", &archive, "--out", &offline, "--seed", "13"])
        .status()
        .unwrap()
        .success());

    // Port 0 + --port-file: the daemon picks a free port and tells us.
    let mut child = Command::new(daemon)
        .args([
            "--bind",
            "127.0.0.1:0",
            "--shards",
            "7",
            "--port-file",
            &port_file.to_string_lossy(),
        ])
        .spawn()
        .unwrap();
    let addr = {
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        loop {
            if let Ok(addr) = std::fs::read_to_string(&port_file) {
                break addr;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "otrepaird never wrote its port file"
            );
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    };

    let run = |args: &[&str]| {
        let out = Command::new(bin())
            .args(["client", args[0], "--addr", &addr])
            .args(&args[1..])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "client {} failed: {}",
            args[0],
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };

    assert!(run(&["ping"]).contains("pong"));
    run(&[
        "load",
        "--plan",
        &plan,
        "--name",
        "cli-plan",
        "--version",
        "2",
    ]);
    assert!(run(&["plans"]).contains("cli-plan@2"));
    run(&[
        "repair", "--name", "cli-plan", "--data", &archive, "--out", &served, "--seed", "13",
    ]);
    assert!(run(&["info"]).contains("1 plans"));
    run(&["evict", "--name", "cli-plan", "--version", "2"]);
    assert!(run(&["plans"]).contains("no plans registered"));

    // A client error is an exit failure with the server's code named.
    let missing = Command::new(bin())
        .args([
            "client",
            "repair",
            "--addr",
            &addr,
            "--name",
            "ghost",
            "--data",
            &archive,
            "--out",
            "/dev/null",
        ])
        .output()
        .unwrap();
    assert!(!missing.status.success());
    assert!(String::from_utf8_lossy(&missing.stderr).contains("UnknownPlan"));

    child.kill().unwrap();
    child.wait().unwrap();

    assert_eq!(
        std::fs::read(&offline).unwrap(),
        std::fs::read(&served).unwrap(),
        "served CSV must be byte-identical to offline apply"
    );
}

#[test]
fn help_prints_usage() {
    let out = Command::new(bin()).args(["--help"]).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for word in [
        "design",
        "apply",
        "evaluate",
        "--plan",
        "--monge",
        "--threads",
        "--joint",
        "--eps-scaling",
        "OTR_THREADS",
        "OTR_KERNEL_CELLS",
        "serve",
        "client",
        "--max-conns",
        "--deadline-ms",
        "--retries",
        "--timeout",
        "docs/operations.md",
    ] {
        assert!(text.contains(word), "usage missing {word}");
    }
}
