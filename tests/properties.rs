//! Cross-crate property-based tests (proptest): invariants of the repair
//! pipeline under randomized populations and configurations.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use ot_fair_repair::prelude::*;

/// Random but well-posed simulation specs (components separated enough to
/// avoid degenerate groups, probabilities bounded away from 0/1).
fn arb_spec() -> impl Strategy<Value = SimulationSpec> {
    (
        -2.0f64..2.0,
        -2.0f64..2.0,
        0.3f64..3.0,
        0.2f64..0.8,
        0.15f64..0.5,
        0.15f64..0.5,
    )
        .prop_map(|(m0, m1, sigma, pr_u0, p0, p1)| SimulationSpec {
            means: [
                [vec![m0, -m0], vec![m1, m1]],
                [vec![-m1, m0], vec![0.0, 0.0]],
            ],
            sigma,
            covs: None,
            pr_u0,
            pr_s0_given_u: [p0, p1],
        })
}

/// Arbitrary well-formed datasets: any dimension, any mix of group
/// labels, finite feature values (including negatives and zeros).
fn arb_dataset() -> impl Strategy<Value = Dataset> {
    (1usize..4).prop_flat_map(|dim| {
        proptest::collection::vec(
            (proptest::collection::vec(-1e6f64..1e6, dim), 0u8..2, 0u8..2),
            1..60,
        )
        .prop_map(|rows| {
            let points = rows
                .into_iter()
                .map(|(x, s, u)| LabelledPoint { x, s, u })
                .collect();
            Dataset::from_points(points).unwrap()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The columnar (SoA) transpose is lossless: `Dataset ⇄
    /// ColumnarDataset` round-trips to a bit-equal dataset, and the
    /// per-group index lists agree between the two layouts.
    #[test]
    fn columnar_round_trip_is_lossless(data in arb_dataset()) {
        let cols = ColumnarDataset::from_dataset(&data);
        prop_assert_eq!(cols.len(), data.len());
        prop_assert_eq!(cols.dim(), data.dim());
        let back = cols.to_dataset();
        prop_assert_eq!(back.points(), data.points());
        for (i, p) in data.points().iter().enumerate() {
            for (k, &v) in p.x.iter().enumerate() {
                prop_assert_eq!(
                    cols.feature_column(k).unwrap()[i].to_bits(),
                    v.to_bits()
                );
            }
        }
        for key in GroupKey::all() {
            prop_assert_eq!(cols.group_indices(key), data.group_indices(key));
        }
    }

    /// Streaming CSV → columnar ingest is equivalent to the row path:
    /// write any dataset out, read it back both ways, and the two
    /// layouts must hold the same rows (CSV round-trips f64 exactly).
    #[test]
    fn csv_columnar_ingest_matches_row_path(data in arb_dataset()) {
        let mut csv = Vec::new();
        ot_fair_repair::data::write_labelled_csv(&mut csv, &data).unwrap();
        let rows = ot_fair_repair::data::read_labelled_csv(&csv[..]).unwrap();
        let cols = ot_fair_repair::data::read_labelled_csv_columnar(&csv[..]).unwrap();
        let cols_as_rows = cols.to_dataset();
        prop_assert_eq!(cols_as_rows.points(), rows.points());
        // The columnar writer produces the identical byte stream.
        let mut csv_cols = Vec::new();
        ot_fair_repair::data::write_labelled_csv_columnar(&mut csv_cols, &cols).unwrap();
        prop_assert_eq!(csv_cols, csv);
    }

    #[test]
    fn repair_always_preserves_cardinality_labels_and_support(
        spec in arb_spec(),
        seed in 0u64..10_000,
        n_q in 5usize..80,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let Ok(split) = spec.generate(300, 600, &mut rng) else { return Ok(()); };
        let Ok(plan) = RepairPlanner::new(RepairConfig::with_n_q(n_q)).design(&split.research)
        else { return Ok(()); }; // undersized groups are a legal refusal
        let repaired = plan.repair_dataset(&split.archive, &mut rng).unwrap();

        prop_assert_eq!(repaired.len(), split.archive.len());
        for (a, b) in repaired.points().iter().zip(split.archive.points()) {
            prop_assert_eq!(a.s, b.s);
            prop_assert_eq!(a.u, b.u);
            for (k, &v) in a.x.iter().enumerate() {
                let fp = plan.feature_plan(a.u, k).unwrap();
                prop_assert!(
                    fp.support.iter().any(|&q| (q - v).abs() < 1e-9),
                    "value {} not on the (u={}, k={}) support", v, a.u, k
                );
            }
        }
    }

    #[test]
    fn repaired_values_stay_within_research_range(
        seed in 0u64..10_000,
    ) {
        let spec = SimulationSpec::paper_defaults();
        let mut rng = StdRng::seed_from_u64(seed);
        let split = spec.generate(200, 400, &mut rng).unwrap();
        let Ok(plan) = RepairPlanner::new(RepairConfig::with_n_q(30)).design(&split.research)
        else { return Ok(()); };
        let repaired = plan.repair_dataset(&split.archive, &mut rng).unwrap();
        for p in repaired.points() {
            for (k, &v) in p.x.iter().enumerate() {
                let fp = plan.feature_plan(p.u, k).unwrap();
                prop_assert!(v >= fp.support[0] - 1e-9);
                prop_assert!(v <= fp.support[fp.support.len() - 1] + 1e-9);
            }
        }
    }

    #[test]
    fn group_proportions_invariant_under_repair(
        spec in arb_spec(),
        seed in 0u64..10_000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let Ok(split) = spec.generate(300, 800, &mut rng) else { return Ok(()); };
        let Ok(plan) = RepairPlanner::new(RepairConfig::with_n_q(25)).design(&split.research)
        else { return Ok(()); };
        let repaired = plan.repair_dataset(&split.archive, &mut rng).unwrap();
        prop_assert!((repaired.prob_u1() - split.archive.prob_u1()).abs() < 1e-12);
        for u in 0..2u8 {
            prop_assert!(
                (repaired.prob_s0_given_u(u) - split.archive.prob_s0_given_u(u)).abs()
                    < 1e-12
            );
        }
    }

    #[test]
    fn geometric_repair_is_idempotent_on_labels(
        seed in 0u64..10_000,
        t in 0.0f64..1.0,
    ) {
        let spec = SimulationSpec::paper_defaults();
        let mut rng = StdRng::seed_from_u64(seed);
        let data = spec.sample_dataset(200, &mut rng).unwrap();
        let repaired = GeometricRepair { t, min_group_size: 2 }.repair(&data).unwrap();
        prop_assert_eq!(repaired.len(), data.len());
        for (a, b) in repaired.points().iter().zip(data.points()) {
            prop_assert_eq!(a.s, b.s);
            prop_assert_eq!(a.u, b.u);
            for &v in &a.x {
                prop_assert!(v.is_finite());
            }
        }
    }

    #[test]
    fn plan_json_round_trip_repairs_identically(
        seed in 0u64..5_000,
    ) {
        let spec = SimulationSpec::paper_defaults();
        let mut rng = StdRng::seed_from_u64(seed);
        let split = spec.generate(250, 250, &mut rng).unwrap();
        let Ok(plan) = RepairPlanner::new(RepairConfig::with_n_q(20)).design(&split.research)
        else { return Ok(()); };
        let back = ot_fair_repair::repair::RepairPlan::from_json(&plan.to_json().unwrap())
            .unwrap();
        // Same RNG stream => same draws (support values identical through
        // JSON via ryu round-trip).
        let a = plan
            .repair_dataset(&split.archive, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        let b = back
            .repair_dataset(&split.archive, &mut StdRng::seed_from_u64(seed))
            .unwrap();
        for (pa, pb) in a.points().iter().zip(b.points()) {
            for (va, vb) in pa.x.iter().zip(&pb.x) {
                prop_assert!((va - vb).abs() < 1e-9);
            }
        }
    }
}
