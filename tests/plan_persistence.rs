//! Persistence of the paper's deployable artifact: a designed
//! [`RepairPlan`] must survive JSON serialization — structurally, through
//! sampler recompilation, and distributionally (the repaired output of a
//! deserialized plan is the same distribution the original plan induces).

use rand::rngs::StdRng;
use rand::SeedableRng;

use ot_fair_repair::prelude::*;
use ot_fair_repair::repair::FeaturePlan;

fn designed_plan(seed: u64, n_research: usize) -> (RepairPlan, SplitData) {
    let spec = SimulationSpec::paper_defaults();
    let mut rng = StdRng::seed_from_u64(seed);
    let split = spec.generate(n_research, 20_000, &mut rng).unwrap();
    let plan = RepairPlanner::new(RepairConfig::with_n_q(30))
        .design(&split.research)
        .unwrap();
    (plan, split)
}

/// Empirical pmf of repaired feature `k` over the stratum's support
/// states, for points of group `(u, s)`, pooled over several datasets.
fn repaired_pmf(datasets: &[Dataset], plan: &RepairPlan, u: u8, s: u8, k: usize) -> Vec<f64> {
    let fp = plan.feature_plan(u, k).unwrap();
    let mut counts = vec![0usize; fp.support.len()];
    let mut total = 0usize;
    for p in datasets.iter().flat_map(|d| d.points()) {
        if p.u != u || p.s != s {
            continue;
        }
        let v = p.x[k];
        let j = fp
            .support
            .iter()
            .position(|&q| (q - v).abs() < 1e-9)
            .unwrap_or_else(|| panic!("repaired value {v} not on support"));
        counts[j] += 1;
        total += 1;
    }
    assert!(total > 1_000, "stratum (u={u}, s={s}) too small: {total}");
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

#[test]
fn deserialized_plan_repairs_to_the_same_distribution() {
    let (plan, split) = designed_plan(11, 400);
    let json = plan.to_json().unwrap();
    let restored = RepairPlan::from_json(&json).unwrap();

    // Independent RNG streams on both sides: the agreement we demand is
    // distributional, not draw-by-draw. Pool several repair passes so the
    // smallest stratum (`Pr[s=0|u=1]` is 0.05 under paper defaults) has
    // enough mass for a tight total-variation bound.
    let repaired_a: Vec<Dataset> = (0..5)
        .map(|i| {
            plan.repair_dataset(&split.archive, &mut StdRng::seed_from_u64(100 + i))
                .unwrap()
        })
        .collect();
    let repaired_b: Vec<Dataset> = (0..5)
        .map(|i| {
            restored
                .repair_dataset(&split.archive, &mut StdRng::seed_from_u64(200 + i))
                .unwrap()
        })
        .collect();

    for u in 0..2u8 {
        for s in 0..2u8 {
            for k in 0..2usize {
                let pa = repaired_pmf(&repaired_a, &plan, u, s, k);
                let pb = repaired_pmf(&repaired_b, &restored, u, s, k);
                // Total-variation distance between the two empirical
                // output pmfs; Monte-Carlo noise at these stratum sizes
                // stays well under this bound.
                let tv: f64 = pa.iter().zip(&pb).map(|(a, b)| (a - b).abs()).sum::<f64>() / 2.0;
                assert!(
                    tv < 0.05,
                    "(u={u}, s={s}, k={k}): TV distance {tv} between original and \
                     deserialized plan outputs"
                );
            }
        }
    }
}

#[test]
fn feature_plan_requires_explicit_recompilation_after_raw_deserialize() {
    let (plan, _) = designed_plan(12, 300);
    let fp = plan.feature_plan(0, 0).unwrap();
    let json = serde_json::to_string(fp).unwrap();

    // Raw serde deserialization skips the derived samplers...
    let mut raw: FeaturePlan = serde_json::from_str(&json).unwrap();
    assert!(!raw.is_compiled());
    let mut rng = StdRng::seed_from_u64(3);
    assert!(
        raw.repair_value(0, 0.0, &mut rng).is_err(),
        "an uncompiled plan must refuse to repair"
    );

    // ...and compile() restores full function.
    raw.compile().unwrap();
    assert!(raw.is_compiled());
    let v = raw.repair_value(0, 0.0, &mut rng).unwrap();
    assert!(raw.support.iter().any(|&q| (q - v).abs() < 1e-9));
}

#[test]
fn json_artifact_is_stable_under_a_second_round_trip() {
    let (plan, _) = designed_plan(13, 300);
    let json1 = plan.to_json().unwrap();
    let restored = RepairPlan::from_json(&json1).unwrap();
    let json2 = restored.to_json().unwrap();
    // One round trip is the fixed point: floats re-render identically.
    assert_eq!(json1, json2);
    assert_eq!(&restored, &RepairPlan::from_json(&json2).unwrap());
}

#[test]
fn solver_backend_survives_persistence() {
    let spec = SimulationSpec::paper_defaults();
    let mut rng = StdRng::seed_from_u64(14);
    let split = spec.generate(300, 500, &mut rng).unwrap();
    let mut cfg = RepairConfig::with_n_q(20);
    cfg.solver = SolverBackend::sinkhorn(0.1);
    let plan = RepairPlanner::new(cfg).design(&split.research).unwrap();
    let restored = RepairPlan::from_json(&plan.to_json().unwrap()).unwrap();
    assert_eq!(restored.config.solver, SolverBackend::sinkhorn(0.1));
    assert_eq!(restored.config, plan.config);
}
