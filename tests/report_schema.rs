//! Golden-file schema test for [`JointDesignReport`] — the JSON the
//! perf-smoke job archives as `BENCH_joint_report.json` and operators
//! read for convergence headroom. The CI artifact format must not
//! drift silently: any field rename, removal, reorder, or type change
//! shows up here as a diff against the checked-in fixture, and the
//! fixture update becomes an explicit, reviewable part of the change.

use ot_fair_repair::prelude::*;
use ot_fair_repair::repair::{BarycentreStageStat, JointStratumReport};

/// A fully populated report with stable, hand-picked values — every
/// field and nesting level of the artifact schema exercised.
fn reference_report() -> JointDesignReport {
    JointDesignReport {
        n_q: 24,
        epsilon: 0.05,
        eps_scaling: Some(EpsSchedule {
            eps0: 1.0,
            factor: 0.25,
            stage_iters: 0,
            stage_tol: 0.0,
        }),
        solver: "sinkhorn:0.05:scaled".to_string(),
        kernel: "separable".to_string(),
        design_secs: 1.5,
        strata: vec![
            JointStratumReport {
                u: 0,
                barycentre_iterations: 120,
                barycentre_final_delta: 5e-10,
                barycentre_stages: vec![
                    BarycentreStageStat {
                        eps: 1.0,
                        iterations: 40,
                    },
                    BarycentreStageStat {
                        eps: 0.25,
                        iterations: 50,
                    },
                    BarycentreStageStat {
                        eps: 0.05,
                        iterations: 30,
                    },
                ],
                plan_transport_cost: [0.75, 1.25],
            },
            JointStratumReport {
                u: 1,
                barycentre_iterations: 90,
                barycentre_final_delta: 2.5e-10,
                barycentre_stages: vec![BarycentreStageStat {
                    eps: 0.05,
                    iterations: 90,
                }],
                plan_transport_cost: [0.5, 2.0],
            },
        ],
    }
}

#[test]
fn joint_design_report_schema_matches_checked_in_fixture() {
    let fixture_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/joint_design_report.json"
    );
    let fixture = std::fs::read_to_string(fixture_path)
        .unwrap_or_else(|e| panic!("cannot read fixture {fixture_path}: {e}"));
    // Compare as parsed JSON values: whitespace-insensitive, but field
    // names, order, nesting, and numeric payloads all pinned (the
    // vendored Value keeps object entries in serialization order).
    let want: serde_json::Value = serde_json::from_str(&fixture)
        .unwrap_or_else(|e| panic!("malformed fixture {fixture_path}: {e}"));
    let got: serde_json::Value =
        serde_json::from_str(&serde_json::to_string(&reference_report()).unwrap()).unwrap();
    assert!(
        want == got,
        "JointDesignReport schema drifted from tests/fixtures/joint_design_report.json.\n\
         If the change is intentional, re-record the fixture from this test's \
         reference_report() and review the diff.\n\
         fixture: {want:?}\n\
         current: {got:?}"
    );
}
