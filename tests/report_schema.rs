//! Golden-file schema test for [`JointDesignReport`] — the JSON the
//! perf-smoke job archives as `BENCH_joint_report.json` and operators
//! read for convergence headroom. The CI artifact format must not
//! drift silently: any field rename, removal, reorder, or type change
//! shows up here as a diff against the checked-in fixture, and the
//! fixture update becomes an explicit, reviewable part of the change.

use ot_fair_repair::prelude::*;
use ot_fair_repair::repair::{BarycentreStageStat, JointStratumReport};

/// Axis grids of the checked-in 3-feature plan fixture, keyed by `u`
/// (must match `tests/fixtures/joint_plan_3feature.json`).
const FIXTURE_AXES: [[[f64; 2]; 3]; 2] = [
    [[0.0, 1.0], [0.0, 2.0], [0.0, 3.0]],
    [[-1.0, 0.0], [-1.0, 1.0], [-1.0, 2.0]],
];

/// A fully populated report with stable, hand-picked values — every
/// field and nesting level of the artifact schema exercised.
fn reference_report() -> JointDesignReport {
    JointDesignReport {
        n_q: 24,
        dims: 3,
        epsilon: 0.05,
        eps_scaling: Some(EpsSchedule {
            eps0: 1.0,
            factor: 0.25,
            stage_iters: 0,
            stage_tol: 0.0,
        }),
        solver: "sinkhorn:0.05:scaled".to_string(),
        kernel: "separable".to_string(),
        design_secs: 1.5,
        strata: vec![
            JointStratumReport {
                u: 0,
                barycentre_iterations: 120,
                barycentre_final_delta: 5e-10,
                barycentre_stages: vec![
                    BarycentreStageStat {
                        eps: 1.0,
                        iterations: 40,
                    },
                    BarycentreStageStat {
                        eps: 0.25,
                        iterations: 50,
                    },
                    BarycentreStageStat {
                        eps: 0.05,
                        iterations: 30,
                    },
                ],
                plan_transport_cost: [0.75, 1.25],
            },
            JointStratumReport {
                u: 1,
                barycentre_iterations: 90,
                barycentre_final_delta: 2.5e-10,
                barycentre_stages: vec![BarycentreStageStat {
                    eps: 0.05,
                    iterations: 90,
                }],
                plan_transport_cost: [0.5, 2.0],
            },
        ],
    }
}

#[test]
fn joint_design_report_schema_matches_checked_in_fixture() {
    let fixture_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/joint_design_report.json"
    );
    let fixture = std::fs::read_to_string(fixture_path)
        .unwrap_or_else(|e| panic!("cannot read fixture {fixture_path}: {e}"));
    // Compare as parsed JSON values: whitespace-insensitive, but field
    // names, order, nesting, and numeric payloads all pinned (the
    // vendored Value keeps object entries in serialization order).
    let want: serde_json::Value = serde_json::from_str(&fixture)
        .unwrap_or_else(|e| panic!("malformed fixture {fixture_path}: {e}"));
    let got: serde_json::Value =
        serde_json::from_str(&serde_json::to_string(&reference_report()).unwrap()).unwrap();
    assert!(
        want == got,
        "JointDesignReport schema drifted from tests/fixtures/joint_design_report.json.\n\
         If the change is intentional, re-record the fixture from this test's \
         reference_report() and review the diff.\n\
         fixture: {want:?}\n\
         current: {got:?}"
    );
}

/// Golden-file schema test for the `d = 3` joint-plan artifact — the
/// JSON `otrepair design --joint --out` writes and `apply --joint` /
/// `otrepaird` read back. The hand-written fixture (2×2×2 product grid,
/// uniform 8×8 plans) pins the on-disk schema in both directions:
/// `from_json` must keep accepting it, and re-serialization must
/// reproduce it field-for-field (including the legacy `gx`/`gy` keys,
/// empty at `d ≥ 3`, and the `axes` grids). A loaded fixture plan must
/// also actually repair: seed-deterministically, onto its stratum's
/// product grid.
#[test]
fn three_feature_joint_plan_fixture_round_trips_and_repairs() {
    let fixture_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/joint_plan_3feature.json"
    );
    let fixture = std::fs::read_to_string(fixture_path)
        .unwrap_or_else(|e| panic!("cannot read fixture {fixture_path}: {e}"));
    let plan = JointRepairPlan::from_json(&fixture)
        .unwrap_or_else(|e| panic!("fixture plan no longer loads: {e}"));
    assert_eq!(plan.dims(), 3);
    assert_eq!(plan.config().n_q, 2);

    let want: serde_json::Value = serde_json::from_str(&fixture)
        .unwrap_or_else(|e| panic!("malformed fixture {fixture_path}: {e}"));
    let got: serde_json::Value = serde_json::from_str(&plan.to_json().unwrap()).unwrap();
    assert!(
        want == got,
        "JointRepairPlan schema drifted from tests/fixtures/joint_plan_3feature.json.\n\
         If the change is intentional, re-record the fixture from to_json() and \
         review the diff.\n\
         fixture: {want:?}\n\
         current: {got:?}"
    );

    let archive = Dataset::from_points(vec![
        LabelledPoint {
            x: vec![0.3, 1.9, 2.2],
            s: 0,
            u: 0,
        },
        LabelledPoint {
            x: vec![0.9, 0.1, 2.9],
            s: 1,
            u: 0,
        },
        LabelledPoint {
            x: vec![-0.4, 0.6, 1.5],
            s: 0,
            u: 1,
        },
        LabelledPoint {
            x: vec![-0.9, -0.2, 0.3],
            s: 1,
            u: 1,
        },
    ])
    .unwrap();
    let repaired = plan.repair_dataset_par(&archive, 11).unwrap();
    let again = plan.repair_dataset_par(&archive, 11).unwrap();
    for (p, q) in repaired.points().iter().zip(again.points()) {
        assert_eq!(p.x, q.x, "same seed, different repair");
    }
    for p in repaired.points() {
        let axes = &FIXTURE_AXES[p.u as usize];
        for (k, v) in p.x.iter().enumerate() {
            assert!(
                axes[k].contains(v),
                "repaired coordinate {v} is off axis {k} of stratum u = {}",
                p.u
            );
        }
    }
}
