//! Integration tests of the drift-aware plan lifecycle: a real
//! `otrepaird` server whose drift watch trips on a shifted archive
//! stream, hot-swaps in a warm re-designed plan as the next version of
//! the same name, persists the new artifact, and keeps the serving
//! determinism contract — the swapped-in version serves bytes
//! identical to an offline `apply` of the persisted artifact, for any
//! thread/shard policy.

use rand::rngs::StdRng;
use rand::SeedableRng;

use ot_fair_repair::data::{ColumnarDataset, Dataset, Drift, SimulationSpec};
use ot_fair_repair::repair::{DriftConfig, RepairConfig, RepairPlan, RepairPlanner};
use ot_fair_repair::serve::{Client, ErrorCode, PlanKind, ServeConfig, Server, ServerHandle};

/// A running server on an OS-assigned loopback port.
struct TestServer {
    addr: String,
    handle: ServerHandle,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TestServer {
    fn start(mut config: ServeConfig) -> Self {
        config.bind = "127.0.0.1:0".into();
        let server = Server::bind(&config).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = server.handle().unwrap();
        let thread = std::thread::spawn(move || server.run().unwrap());
        Self {
            addr,
            handle,
            thread: Some(thread),
        }
    }

    fn client(&self) -> Client {
        Client::connect(&self.addr).unwrap()
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn bits(columns: &[Vec<f64>]) -> Vec<Vec<u64>> {
    columns
        .iter()
        .map(|c| c.iter().map(|v| v.to_bits()).collect())
        .collect()
}

fn research_and_drifted_archive(seed: u64, n: usize) -> (Dataset, Dataset) {
    let spec = SimulationSpec::paper_defaults();
    let mut rng = StdRng::seed_from_u64(seed);
    let research = spec.sample_dataset(800, &mut rng).unwrap();
    let archive = spec.sample_dataset(n, &mut rng).unwrap();
    let drifted = Drift::MeanShift(vec![3.0, 3.0]).apply(&archive).unwrap();
    (research, drifted)
}

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("otrepaird-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The tentpole, end to end over the wire: arm a watch, stream a
/// drifted archive through `Repair` until the monitor trips, and
/// require (1) a new version of the same name registered and served as
/// latest, (2) the persisted artifact byte-reproducing the served
/// repair offline, (3) an audit record naming the parent version and
/// the trigger divergence.
#[test]
fn drift_trip_hot_swaps_a_new_version_that_matches_offline_apply() {
    let (research, drifted) = research_and_drifted_archive(31, 2_400);
    let plan = RepairPlanner::new(RepairConfig::with_n_q(16))
        .design(&research)
        .unwrap();
    let json = plan.to_json().unwrap();
    let dir = tmp_dir("lifecycle");

    let server = TestServer::start(ServeConfig {
        shards: 3,
        plans_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let mut client = server.client();
    client
        .load_plan(PlanKind::Scalar, "census", 1, &json)
        .unwrap();
    // Satellite (b): a plan loaded over the wire lands in --plans too.
    assert!(
        dir.join("census@1.json").exists(),
        "wire-loaded plan was not persisted"
    );

    let config = DriftConfig {
        threshold: 0.2,
        trips: 2,
        check_every: 200,
        min_rows: 400,
    };
    assert_eq!(client.watch("census", &config).unwrap(), 1);

    // Before any rows: a live report, nothing tripped.
    let report = client.drift_status("census").unwrap();
    assert_eq!((report.version, report.rows_seen, report.swaps), (1, 0, 0));
    assert!(!report.tripped);

    // Stream the drifted archive through Repair in batches until the
    // watch swaps. 2 400 heavily shifted rows at these thresholds trip
    // well before the stream runs out.
    let points = drifted.points();
    let mut swapped = false;
    for chunk in points.chunks(400) {
        let batch = ColumnarDataset::from_dataset(&Dataset::from_points(chunk.to_vec()).unwrap());
        client.repair("census", 0, 9, &batch).unwrap();
        let report = client.drift_status("census").unwrap();
        if report.swaps >= 1 {
            swapped = true;
            assert_eq!(report.version, 2, "swap must re-arm on the new version");
            assert!(!report.tripped, "monitor must be reset after the swap");
            break;
        }
    }
    assert!(swapped, "drifted stream never tripped the watch");

    // The swap registered version 2 of the same name and it is latest.
    let plans = client.list_plans().unwrap();
    assert_eq!(
        plans
            .iter()
            .map(|p| (p.name.as_str(), p.version))
            .collect::<Vec<_>>(),
        vec![("census", 1), ("census", 2)]
    );

    // The audit trail names the lineage and the trigger.
    let audit = client.audit("census").unwrap();
    assert_eq!(audit.len(), 1);
    let rec = &audit[0];
    assert_eq!((rec.version, rec.parent), (2, 1));
    assert!(
        rec.trigger_divergence > config.threshold,
        "trigger {} not above threshold",
        rec.trigger_divergence
    );
    assert!(rec.rows_observed >= config.min_rows);
    assert_eq!(rec.strata.len(), plan.feature_plans().len());
    assert!(rec
        .strata
        .iter()
        .all(|s| s.e_before.is_finite() && s.e_after.is_finite()));

    // Acceptance: the hot-swapped version serves bytes identical to an
    // offline apply of the persisted artifact.
    let artifact = dir.join("census@2.json");
    assert!(artifact.exists(), "swapped version was not persisted");
    let offline_plan = RepairPlan::from_json(&std::fs::read_to_string(&artifact).unwrap()).unwrap();
    let probe =
        ColumnarDataset::from_dataset(&Dataset::from_points(points[..500].to_vec()).unwrap());
    let offline = bits(
        offline_plan
            .repair_columnar_par(&probe, 77)
            .unwrap()
            .feature_columns(),
    );
    let served_latest = client.repair("census", 0, 77, &probe).unwrap();
    let served_pinned = client.repair("census", 2, 77, &probe).unwrap();
    assert_eq!(
        bits(&served_latest.columns),
        offline,
        "latest (hot-swapped) bytes differ from offline apply of the persisted artifact"
    );
    assert_eq!(bits(&served_pinned.columns), offline);
    // Version 1 still serves its own (different) bytes — immutable.
    let served_v1 = client.repair("census", 1, 77, &probe).unwrap();
    assert_ne!(
        bits(&served_v1.columns),
        offline,
        "re-designed plan must actually differ for this test to bite"
    );

    // Info books the lifecycle counters.
    let info = client.info().unwrap();
    assert_eq!((info.watches, info.swaps), (1, 1));

    // Satellite (d): the persisted swapped-in artifact serves identical
    // bytes under any thread/shard policy — fresh daemons restarted
    // from the plans directory at 1, 2, and 7 threads.
    drop(client);
    drop(server);
    for threads in [1usize, 2, 7] {
        let server = TestServer::start(ServeConfig {
            threads,
            shards: threads,
            plans_dir: Some(dir.clone()),
            ..ServeConfig::default()
        });
        let mut client = server.client();
        // The restarted registry rehydrates both persisted versions.
        assert_eq!(client.list_plans().unwrap().len(), 2);
        let served = client.repair("census", 2, 77, &probe).unwrap();
        assert_eq!(
            bits(&served.columns),
            offline,
            "threads={threads}: restarted swapped-in version changed bytes"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Watch misuse answers typed errors without disturbing the daemon:
/// unknown names, joint plans, bad configs, and status/audit queries
/// with no watch armed.
#[test]
fn watch_errors_are_typed_and_contained() {
    let (research, _) = research_and_drifted_archive(32, 100);
    let json = RepairPlanner::new(RepairConfig::with_n_q(12))
        .design(&research)
        .unwrap()
        .to_json()
        .unwrap();
    let server = TestServer::start(ServeConfig::default());
    let mut client = server.client();

    let err = client.watch("ghost", &DriftConfig::default()).unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::UnknownPlan), "{err}");
    let err = client.drift_status("ghost").unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::UnknownPlan), "{err}");
    let err = client.audit("ghost").unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::UnknownPlan), "{err}");

    client.load_plan(PlanKind::Scalar, "p", 1, &json).unwrap();
    let err = client
        .watch(
            "p",
            &DriftConfig {
                threshold: 0.0,
                ..DriftConfig::default()
            },
        )
        .unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::BadPayload), "{err}");

    // A healthy watch still arms afterwards, and re-arming replaces it.
    assert_eq!(client.watch("p", &DriftConfig::default()).unwrap(), 1);
    assert_eq!(client.watch("p", &DriftConfig::default()).unwrap(), 1);
    assert_eq!(client.info().unwrap().watches, 1);
}

/// Repairs pinned to a non-watched (older) version must not feed the
/// monitor: only traffic served by the watched version is evidence.
#[test]
fn pinned_stale_version_traffic_does_not_feed_the_watch() {
    let (research, drifted) = research_and_drifted_archive(33, 900);
    let planner = RepairPlanner::new(RepairConfig::with_n_q(12));
    let json = planner.design(&research).unwrap().to_json().unwrap();
    let server = TestServer::start(ServeConfig::default());
    let mut client = server.client();
    client.load_plan(PlanKind::Scalar, "p", 1, &json).unwrap();
    client.load_plan(PlanKind::Scalar, "p", 2, &json).unwrap();
    // Watch arms on the latest version (2). An unreachable trip count
    // keeps the watch from swapping mid-test: this test measures row
    // accounting, not the swap.
    let config = DriftConfig {
        trips: 1_000_000,
        ..DriftConfig::default()
    };
    assert_eq!(client.watch("p", &config).unwrap(), 2);

    let archive = ColumnarDataset::from_dataset(&drifted);
    client.repair("p", 1, 5, &archive).unwrap(); // pinned to stale v1
    let report = client.drift_status("p").unwrap();
    assert_eq!(report.rows_seen, 0, "stale-version rows were booked");

    client.repair("p", 2, 5, &archive).unwrap(); // the watched version
    client.repair("p", 0, 5, &archive).unwrap(); // latest == watched
    let report = client.drift_status("p").unwrap();
    assert_eq!(report.rows_seen, 2 * archive.len() as u64);
}
