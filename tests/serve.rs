//! Integration tests of the repair service: a real `otrepaird` server
//! on a loopback socket, exercised through the library client and raw
//! sockets.
//!
//! The load-bearing assertions pin the **serving determinism
//! contract** (docs/determinism.md): served output is byte-identical —
//! at the `f64` bit level — to offline repair, for shard counts
//! {1, 2, 7}, any thread policy, and concurrent interleaved clients.

use std::io::{Read, Write};
use std::net::TcpStream;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ot_fair_repair::data::{ColumnarDataset, Dataset, SimulationSpec};
use ot_fair_repair::prelude::EpsSchedule;
use ot_fair_repair::repair::{
    JointRepairConfig, JointRepairPlan, RepairConfig, RepairPlan, RepairPlanner,
};
use ot_fair_repair::serve::protocol::{self, request_type};
use ot_fair_repair::serve::{
    Client, ClientError, ErrorCode, PlanKind, ServeConfig, Server, ServerHandle,
};

/// A running server on an OS-assigned loopback port.
struct TestServer {
    addr: String,
    handle: ServerHandle,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl TestServer {
    fn start(mut config: ServeConfig) -> Self {
        config.bind = "127.0.0.1:0".into();
        let server = Server::bind(&config).unwrap();
        let addr = server.local_addr().unwrap().to_string();
        let handle = server.handle().unwrap();
        let thread = std::thread::spawn(move || server.run().unwrap());
        Self {
            addr,
            handle,
            thread: Some(thread),
        }
    }

    fn client(&self) -> Client {
        Client::connect(&self.addr).unwrap()
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn split_data(seed: u64, n_research: usize, n_archive: usize) -> (Dataset, ColumnarDataset) {
    let mut rng = StdRng::seed_from_u64(seed);
    let split = SimulationSpec::paper_defaults()
        .generate(n_research, n_archive, &mut rng)
        .unwrap();
    let archive = ColumnarDataset::from_dataset(&split.archive);
    (split.research, archive)
}

fn scalar_plan(research: &Dataset, n_q: usize) -> RepairPlan {
    RepairPlanner::new(RepairConfig::with_n_q(n_q))
        .design(research)
        .unwrap()
}

fn joint_plan(research: &Dataset) -> JointRepairPlan {
    let config = JointRepairConfig {
        n_q: 8,
        ..JointRepairConfig::default()
    };
    JointRepairPlan::design(research, config).unwrap()
}

/// Bit-level equality of feature columns (`==` would conflate 0.0 and
/// -0.0 and choke on any NaN).
fn bits(columns: &[Vec<f64>]) -> Vec<Vec<u64>> {
    columns
        .iter()
        .map(|c| c.iter().map(|v| v.to_bits()).collect())
        .collect()
}

#[test]
fn served_repair_is_byte_identical_to_offline_across_shard_counts() {
    let (research, archive) = split_data(11, 400, 1_200);
    let plan = scalar_plan(&research, 30);
    let json = plan.to_json().unwrap();
    let seed = 7u64;
    let offline = bits(
        plan.repair_columnar_par(&archive, seed)
            .unwrap()
            .feature_columns(),
    );

    for shards in [1usize, 2, 7] {
        let server = TestServer::start(ServeConfig {
            shards,
            ..ServeConfig::default()
        });
        let mut client = server.client();
        client
            .load_plan(PlanKind::Scalar, "census", 1, &json)
            .unwrap();
        let served = client.repair("census", 1, seed, &archive).unwrap();
        assert_eq!(
            bits(&served.columns),
            offline,
            "served bytes differ from offline at {shards} shards"
        );
        // The out-of-range count is part of the contract too: it must
        // not depend on the shard layout.
        let (_, oob) = plan.repair_columnar_shard(&archive, seed, 0).unwrap();
        assert_eq!(served.out_of_range, oob, "oob drifted at {shards} shards");
    }
}

#[test]
fn served_joint_repair_matches_offline() {
    let (research, archive) = split_data(12, 500, 600);
    let plan = joint_plan(&research);
    let json = plan.to_json().unwrap();
    let seed = 3u64;
    let offline = ColumnarDataset::from_dataset(
        &plan
            .repair_dataset_par(&archive.to_dataset(), seed)
            .unwrap(),
    );

    let server = TestServer::start(ServeConfig {
        shards: 5,
        ..ServeConfig::default()
    });
    let mut client = server.client();
    client
        .load_plan(PlanKind::Joint, "joint", 1, &json)
        .unwrap();
    let served = client.repair_archive("joint", 0, seed, &archive).unwrap();
    assert_eq!(
        bits(served.feature_columns()),
        bits(offline.feature_columns())
    );
    // Labels pass through repair untouched.
    assert_eq!(served.s(), archive.s());
    assert_eq!(served.u(), archive.u());
}

/// The `d = 3` joint path through the service, end to end: a 3-feature
/// joint plan is (a) preloaded from a `plans_dir` — exercising the
/// registry's kind-sniffing loader (scalar parse first, joint on
/// fallthrough) on the n-d plan schema — and (b) loaded over the wire,
/// and both must serve bytes byte-identical to offline
/// `repair_dataset_par` (the `apply --joint` path). The registry
/// listing must report the plan's true dimensionality, not assume
/// joint means 2.
#[test]
fn served_3feature_joint_repair_matches_offline_and_sniffs_kind() {
    let spec = SimulationSpec {
        means: [
            [vec![-1.0, -1.0, -0.5], vec![0.0, 0.0, 0.0]],
            [vec![1.0, 1.0, 0.5], vec![0.0, 0.0, 0.0]],
        ],
        sigma: 1.0,
        covs: None,
        pr_u0: 0.5,
        pr_s0_given_u: [0.3, 0.1],
    };
    let mut rng = StdRng::seed_from_u64(21);
    let split = spec.generate(300, 250, &mut rng).unwrap();
    let archive = ColumnarDataset::from_dataset(&split.archive);
    let config = JointRepairConfig {
        n_q: 6,
        epsilon: 0.25,
        eps_scaling: Some(EpsSchedule::geometric(1.0, 0.5)),
        ..JointRepairConfig::default()
    };
    let plan = JointRepairPlan::design(&split.research, config).unwrap();
    let json = plan.to_json().unwrap();
    let seed = 5u64;
    let offline = ColumnarDataset::from_dataset(
        &plan
            .repair_dataset_par(&archive.to_dataset(), seed)
            .unwrap(),
    );

    // (a) plans_dir preload: the loader must sniff the n-d artifact as
    // a joint plan without being told its kind.
    let dir = std::env::temp_dir().join(format!("otrepaird-joint3-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("joint3.json"), &json).unwrap();
    let server = TestServer::start(ServeConfig {
        shards: 3,
        plans_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let mut client = server.client();
    let plans = client.list_plans().unwrap();
    assert_eq!(plans.len(), 1);
    assert_eq!(
        (
            plans[0].name.as_str(),
            plans[0].kind,
            plans[0].dim,
            plans[0].n_q
        ),
        ("joint3", PlanKind::Joint, 3, 6),
        "kind sniffing or dim reporting broke on the d = 3 schema"
    );
    let served = client.repair_archive("joint3", 0, seed, &archive).unwrap();
    assert_eq!(
        bits(served.feature_columns()),
        bits(offline.feature_columns()),
        "preloaded d = 3 joint plan served different bytes than offline repair"
    );
    assert_eq!(served.s(), archive.s());
    assert_eq!(served.u(), archive.u());

    // (b) the same artifact loaded over the wire serves the same bytes.
    client
        .load_plan(PlanKind::Joint, "wire3", 1, &json)
        .unwrap();
    let served = client.repair_archive("wire3", 1, seed, &archive).unwrap();
    assert_eq!(
        bits(served.feature_columns()),
        bits(offline.feature_columns()),
        "wire-loaded d = 3 joint plan served different bytes than offline repair"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_clients_each_get_their_own_deterministic_bytes() {
    let (research, archive) = split_data(13, 400, 800);
    let plan = scalar_plan(&research, 24);
    let json = plan.to_json().unwrap();

    let server = TestServer::start(ServeConfig {
        shards: 3,
        ..ServeConfig::default()
    });
    server
        .client()
        .load_plan(PlanKind::Scalar, "p", 1, &json)
        .unwrap();

    // Four clients interleave repairs with distinct seeds; each stream
    // of responses must match that client's own offline reference —
    // cross-request interleaving must be unobservable.
    let addr = server.addr.clone();
    let results: Vec<_> = std::thread::scope(|scope| {
        (0u64..4)
            .map(|client_id| {
                let addr = addr.clone();
                let archive = &archive;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    (0u64..3)
                        .map(|round| {
                            let seed = client_id * 100 + round;
                            (
                                seed,
                                bits(&client.repair("p", 0, seed, archive).unwrap().columns),
                            )
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .collect()
    });
    for per_client in results {
        for (seed, served) in per_client {
            let offline = bits(
                plan.repair_columnar_par(&archive, seed)
                    .unwrap()
                    .feature_columns(),
            );
            assert_eq!(served, offline, "seed {seed} drifted under concurrency");
        }
    }
    assert_eq!(server.handle.rows_repaired(), 4 * 3 * archive.len() as u64);
}

#[test]
fn plan_lifecycle_and_registry_errors_over_the_wire() {
    let (research, archive) = split_data(14, 350, 200);
    let json = scalar_plan(&research, 16).to_json().unwrap();
    let server = TestServer::start(ServeConfig::default());
    let mut client = server.client();

    client.ping().unwrap();
    assert!(client.list_plans().unwrap().is_empty());

    // Load two versions; listing is name-then-version ordered.
    client
        .load_plan(PlanKind::Scalar, "census", 1, &json)
        .unwrap();
    client
        .load_plan(PlanKind::Scalar, "census", 3, &json)
        .unwrap();
    let plans = client.list_plans().unwrap();
    assert_eq!(
        plans
            .iter()
            .map(|p| (p.name.as_str(), p.version))
            .collect::<Vec<_>>(),
        vec![("census", 1), ("census", 3)]
    );
    assert_eq!(
        (plans[0].kind, plans[0].dim, plans[0].n_q),
        (PlanKind::Scalar, 2, 16)
    );

    // Malformed JSON → PlanInvalid.
    let err = client
        .load_plan(PlanKind::Scalar, "bad", 1, "{not json")
        .unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::PlanInvalid), "{err}");

    // Occupied name@version → VersionCollision (immutable versions).
    let err = client
        .load_plan(PlanKind::Scalar, "census", 3, &json)
        .unwrap_err();
    assert_eq!(
        err.server_code(),
        Some(ErrorCode::VersionCollision),
        "{err}"
    );

    // Repair against an unknown plan → UnknownPlan.
    let err = client.repair("nope", 0, 1, &archive).unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::UnknownPlan), "{err}");

    // Dimension mismatch → RepairFailed (the joint kind needs d = 2...
    // here we submit a 1-column archive against a d = 2 scalar plan).
    let skinny =
        ColumnarDataset::from_columns(vec![vec![0.5; 4]], vec![0, 1, 0, 1], vec![0, 0, 1, 1])
            .unwrap();
    let err = client.repair("census", 0, 1, &skinny).unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::RepairFailed), "{err}");

    // Evict; the evicted version is gone, the other remains, and
    // version 0 now resolves to it.
    client.evict_plan("census", 3).unwrap();
    let err = client.evict_plan("census", 3).unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::UnknownPlan), "{err}");
    assert_eq!(client.list_plans().unwrap().len(), 1);
    client.repair("census", 0, 1, &archive).unwrap();

    // The info snapshot reflects the session.
    let info = client.info().unwrap();
    assert_eq!(info.protocol_version, protocol::PROTOCOL_VERSION);
    assert_eq!(info.plans, 1);
    assert_eq!(info.rows_repaired, archive.len() as u64);
    assert!(info.requests >= 10);
}

#[test]
fn version_zero_selects_latest_and_pins_bytes_to_versions() {
    let (research, archive) = split_data(15, 350, 300);
    // Two genuinely different plans under the same name: different nQ
    // resolutions produce different repaired bytes.
    let v1 = scalar_plan(&research, 12);
    let v2 = scalar_plan(&research, 40);
    let server = TestServer::start(ServeConfig::default());
    let mut client = server.client();
    client
        .load_plan(PlanKind::Scalar, "p", 1, &v1.to_json().unwrap())
        .unwrap();
    client
        .load_plan(PlanKind::Scalar, "p", 2, &v2.to_json().unwrap())
        .unwrap();

    let latest = client.repair("p", 0, 9, &archive).unwrap();
    let pinned1 = client.repair("p", 1, 9, &archive).unwrap();
    let pinned2 = client.repair("p", 2, 9, &archive).unwrap();
    assert_eq!(
        bits(&latest.columns),
        bits(&pinned2.columns),
        "0 must mean latest"
    );
    assert_ne!(
        bits(&pinned1.columns),
        bits(&pinned2.columns),
        "different plan versions must actually differ for this test to bite"
    );
    assert_eq!(
        bits(&pinned1.columns),
        bits(
            v1.repair_columnar_par(&archive, 9)
                .unwrap()
                .feature_columns()
        ),
        "pinned version must serve exactly its artifact"
    );
}

#[test]
fn plans_dir_preloads_named_versions() {
    let (research, archive) = split_data(16, 350, 150);
    let json = scalar_plan(&research, 16).to_json().unwrap();
    let dir = std::env::temp_dir().join(format!("otrepaird-preload-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("census.json"), &json).unwrap();
    std::fs::write(dir.join("census@2.json"), &json).unwrap();

    let server = TestServer::start(ServeConfig {
        plans_dir: Some(dir.clone()),
        ..ServeConfig::default()
    });
    let mut client = server.client();
    let plans = client.list_plans().unwrap();
    assert_eq!(
        plans
            .iter()
            .map(|p| (p.name.as_str(), p.version))
            .collect::<Vec<_>>(),
        vec![("census", 1), ("census", 2)]
    );
    client.repair("census", 2, 1, &archive).unwrap();

    // A broken artifact in the directory fails startup loudly instead
    // of serving a partial registry.
    std::fs::write(dir.join("broken.json"), "{oops").unwrap();
    let err = Server::bind(&ServeConfig {
        bind: "127.0.0.1:0".into(),
        plans_dir: Some(dir.clone()),
        ..ServeConfig::default()
    })
    .unwrap_err();
    assert!(err.to_string().contains("broken"), "{err}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn execution_knobs_never_change_served_bytes() {
    let (research, archive) = split_data(17, 400, 700);
    let plan = scalar_plan(&research, 20);
    let json = plan.to_json().unwrap();
    let offline = bits(
        plan.repair_columnar_par(&archive, 42)
            .unwrap()
            .feature_columns(),
    );

    for (threads, shards, batch_rows) in [
        (1, 1, None),
        (2, 7, Some(64)),
        (4, 3, Some(1)),
        (0, 0, None),
    ] {
        let server = TestServer::start(ServeConfig {
            threads,
            shards,
            batch_rows,
            ..ServeConfig::default()
        });
        let mut client = server.client();
        client.load_plan(PlanKind::Scalar, "p", 1, &json).unwrap();
        let served = client.repair("p", 1, 42, &archive).unwrap();
        assert_eq!(
            bits(&served.columns),
            offline,
            "threads={threads} shards={shards} batch_rows={batch_rows:?} changed bytes"
        );
    }
}

/// Raw-socket protocol conformance: framing errors and version skew
/// behave exactly as docs/protocol.md specifies.
#[test]
fn wire_level_framing_errors() {
    let server = TestServer::start(ServeConfig::default());

    // A frame with bad magic gets an Error(BadFrame) answer and then
    // the connection is closed (framing is unrecoverable).
    let mut raw = TcpStream::connect(&server.addr).unwrap();
    raw.write_all(b"HTTP/1.1 GET ").unwrap(); // 13 bytes, none of them OTRP
    let (code, _) = read_error_frame(&mut raw);
    assert_eq!(ErrorCode::from_u16(code), Some(ErrorCode::BadFrame));
    // Closed cleanly (EOF) or hard (RST, if unread bytes remained) —
    // either way the connection must be dead.
    let mut probe = [0u8; 1];
    let closed = matches!(raw.read(&mut probe), Ok(0) | Err(_));
    assert!(closed, "server must close the connection after BadFrame");

    // A well-framed future protocol version gets Error(UnsupportedVersion)
    // but the connection survives: a Ping right after still pongs.
    let mut raw = TcpStream::connect(&server.addr).unwrap();
    let mut frame = protocol::encode_header(request_type::PING, 4).to_vec();
    frame[4] = 9; // future version
    frame.extend_from_slice(&[1, 2, 3, 4]); // payload the server must skip
    raw.write_all(&frame).unwrap();
    let (code, _) = read_error_frame(&mut raw);
    assert_eq!(
        ErrorCode::from_u16(code),
        Some(ErrorCode::UnsupportedVersion)
    );
    raw.write_all(&protocol::encode_header(request_type::PING, 0))
        .unwrap();
    let mut header = [0u8; protocol::HEADER_LEN];
    raw.read_exact(&mut header).unwrap();
    assert_eq!(header[5], protocol::response_type::PONG);

    // An unknown request type is answered (UnknownType) without killing
    // the connection; a truncated payload is BadPayload.
    let mut client = server.client();
    let mut raw = TcpStream::connect(&server.addr).unwrap();
    raw.write_all(&protocol::encode_header(0x6F, 0)).unwrap();
    let (code, _) = read_error_frame(&mut raw);
    assert_eq!(ErrorCode::from_u16(code), Some(ErrorCode::UnknownType));
    raw.write_all(&protocol::encode_header(request_type::EVICT_PLAN, 2))
        .unwrap();
    raw.write_all(&[0, 5]).unwrap(); // claims a 5-byte name, sends none
    let (code, _) = read_error_frame(&mut raw);
    assert_eq!(ErrorCode::from_u16(code), Some(ErrorCode::BadPayload));
    client.ping().unwrap(); // other connections were never disturbed
}

/// Read one frame off a raw socket and require it to be an Error,
/// returning `(code, message)`.
fn read_error_frame(stream: &mut TcpStream) -> (u16, String) {
    let mut header = [0u8; protocol::HEADER_LEN];
    stream.read_exact(&mut header).unwrap();
    assert_eq!(&header[..4], b"OTRP");
    assert_eq!(header[5], protocol::response_type::ERROR);
    let len = u32::from_be_bytes([header[8], header[9], header[10], header[11]]) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).unwrap();
    let code = u16::from_be_bytes([payload[0], payload[1]]);
    (code, String::from_utf8_lossy(&payload[2..]).into_owned())
}

/// Raw-socket abuse: slow loris, adversarial length prefixes, and a
/// zero-length frame. Each must cost exactly its own connection — a
/// healthy client working the same server throughout must never notice.
#[test]
fn raw_socket_abuse_is_contained_to_its_own_connection() {
    let (research, archive) = split_data(18, 350, 200);
    let json = scalar_plan(&research, 16).to_json().unwrap();
    let server = TestServer::start(ServeConfig {
        deadline_ms: 300,
        ..ServeConfig::default()
    });
    let mut healthy = server.client();
    healthy.load_plan(PlanKind::Scalar, "p", 1, &json).unwrap();
    let reference = bits(&healthy.repair("p", 1, 4, &archive).unwrap().columns);

    // 1. Slow loris: a complete header announcing a payload, then
    // silence. The frame deadline must kill the connection with
    // DeadlineExceeded instead of pinning a worker forever.
    let mut loris = TcpStream::connect(&server.addr).unwrap();
    loris
        .write_all(&protocol::encode_header(request_type::PING, 64))
        .unwrap();
    let (code, msg) = read_error_frame(&mut loris);
    assert_eq!(
        ErrorCode::from_u16(code),
        Some(ErrorCode::DeadlineExceeded),
        "{msg}"
    );
    let mut probe = [0u8; 1];
    assert!(
        matches!(loris.read(&mut probe), Ok(0) | Err(_)),
        "deadline-killed connection must be closed"
    );

    // 2. Length prefix just OVER MAX_PAYLOAD: unframeable, BadFrame,
    // closed — and the server must not have tried to allocate it.
    let mut oversized = TcpStream::connect(&server.addr).unwrap();
    let mut header = protocol::encode_header(request_type::PING, 0);
    header[8..].copy_from_slice(&((protocol::MAX_PAYLOAD as u32) + 1).to_be_bytes());
    oversized.write_all(&header).unwrap();
    let (code, _) = read_error_frame(&mut oversized);
    assert_eq!(ErrorCode::from_u16(code), Some(ErrorCode::BadFrame));

    // 3. Length prefix just UNDER the cap (exactly MAX_PAYLOAD), then
    // silence: a legal header, so the server must wait — but
    // progressively, allocating only as bytes arrive, until the
    // deadline kills it. (If the server pre-allocated the announced
    // size this test would cost 1 GiB.)
    let mut huge = TcpStream::connect(&server.addr).unwrap();
    let mut header = protocol::encode_header(request_type::PING, 0);
    header[8..].copy_from_slice(&(protocol::MAX_PAYLOAD as u32).to_be_bytes());
    huge.write_all(&header).unwrap();
    let (code, _) = read_error_frame(&mut huge);
    assert_eq!(ErrorCode::from_u16(code), Some(ErrorCode::DeadlineExceeded));

    // 4. Zero-length REPAIR frame: structurally valid framing with an
    // impossible payload → BadPayload, and the connection survives.
    let mut empty = TcpStream::connect(&server.addr).unwrap();
    empty
        .write_all(&protocol::encode_header(request_type::REPAIR, 0))
        .unwrap();
    let (code, _) = read_error_frame(&mut empty);
    assert_eq!(ErrorCode::from_u16(code), Some(ErrorCode::BadPayload));
    empty
        .write_all(&protocol::encode_header(request_type::PING, 0))
        .unwrap();
    let mut pong = [0u8; protocol::HEADER_LEN];
    empty.read_exact(&mut pong).unwrap();
    assert_eq!(pong[5], protocol::response_type::PONG);

    // The healthy client never noticed any of it, and the served bytes
    // still match.
    assert_eq!(
        bits(&healthy.repair("p", 1, 4, &archive).unwrap().columns),
        reference,
        "abuse on other connections changed a healthy client's bytes"
    );
    let info = healthy.info().unwrap();
    assert!(
        info.deadline_kills >= 2,
        "loris + under-cap silence must both be counted, got {}",
        info.deadline_kills
    );
}

/// The connection governor: connections past `--max-conns` get an
/// immediate polite `Overloaded` error frame; once a slot frees, new
/// connections are served again.
#[test]
fn governor_rejects_past_max_conns_and_recovers() {
    let server = TestServer::start(ServeConfig {
        max_conns: 2,
        ..ServeConfig::default()
    });
    // Two idle connections pin both slots (connections hold their slot
    // until closed, not just while a request is in flight).
    let hold_a = TcpStream::connect(&server.addr).unwrap();
    let hold_b = TcpStream::connect(&server.addr).unwrap();
    // The governor decision happens at accept; wait until both holds
    // are accounted for before probing.
    let mut rejected = None;
    for _ in 0..50 {
        let mut probe = TcpStream::connect(&server.addr).unwrap();
        probe
            .write_all(&protocol::encode_header(request_type::PING, 0))
            .unwrap();
        let mut header = [0u8; protocol::HEADER_LEN];
        probe.read_exact(&mut header).unwrap();
        if header[5] == protocol::response_type::ERROR {
            let len = u32::from_be_bytes([header[8], header[9], header[10], header[11]]) as usize;
            let mut payload = vec![0u8; len];
            probe.read_exact(&mut payload).unwrap();
            rejected = Some(u16::from_be_bytes([payload[0], payload[1]]));
            break;
        }
        // The holds' accept may still be racing ours; give it a beat.
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert_eq!(
        rejected.map(ErrorCode::from_u16),
        Some(Some(ErrorCode::Overloaded)),
        "third concurrent connection was never rejected"
    );
    assert!(server.handle.rejected_overload() >= 1);

    // Release a slot; the next connection must be served normally.
    drop(hold_a);
    let mut ok = false;
    for _ in 0..50 {
        let mut client = server.client();
        if client.ping().is_ok() {
            ok = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(ok, "governor never recovered after a slot freed");
    drop(hold_b);
}

/// A request that panics must cost its own connection an `Internal`
/// error and nothing else: the daemon keeps serving and the registry
/// keeps its plans.
#[test]
fn panicking_request_is_isolated_to_its_connection() {
    let (research, archive) = split_data(19, 350, 200);
    let json = scalar_plan(&research, 16).to_json().unwrap();
    let server = TestServer::start(ServeConfig {
        chaos_panic_plan: Some("poison".into()),
        ..ServeConfig::default()
    });
    let mut client = server.client();
    client.load_plan(PlanKind::Scalar, "p", 1, &json).unwrap();

    let mut victim = server.client();
    let err = victim.repair("poison", 0, 1, &archive).unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::Internal), "{err}");
    // That connection is dead...
    assert!(victim.ping().is_err());
    // ...but the daemon, the registry, and other connections are fine.
    assert_eq!(client.list_plans().unwrap().len(), 1);
    client.repair("p", 1, 1, &archive).unwrap();
    assert_eq!(server.handle.panics_caught(), 1);
}

/// Satellite fix: the daemon removes its `--port-file` on clean
/// shutdown, so scripts can't discover a dead port from a stale file.
#[test]
fn daemon_removes_port_file_on_clean_shutdown() {
    use ot_fair_repair::serve::daemon::{self, DaemonArgs};

    let dir = std::env::temp_dir().join(format!("otrepaird-portfile-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let port_file = dir.join("port");
    let args = DaemonArgs {
        config: ServeConfig {
            bind: "127.0.0.1:0".into(),
            ..ServeConfig::default()
        },
        port_file: Some(port_file.clone()),
    };
    let (tx, rx) = std::sync::mpsc::channel();
    let thread = {
        let args = args.clone();
        std::thread::spawn(move || daemon::run_with_handle(&args, move |h| tx.send(h).unwrap()))
    };
    let handle = rx.recv().unwrap();
    // While serving, the file holds a connectable address.
    let addr = std::fs::read_to_string(&port_file).unwrap();
    Client::connect(&addr).unwrap().ping().unwrap();

    handle.shutdown();
    thread.join().unwrap().unwrap();
    assert!(
        !port_file.exists(),
        "clean shutdown must remove the port file"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn client_surfaces_transport_and_server_errors_distinctly() {
    let server = TestServer::start(ServeConfig::default());
    let mut client = server.client();
    let err = client.evict_plan("ghost", 1).unwrap_err();
    match &err {
        ClientError::Server { .. } => assert_eq!(err.server_code(), Some(ErrorCode::UnknownPlan)),
        other => panic!("expected a server error, got {other}"),
    }
    // Invalid names are rejected server-side with PlanInvalid.
    let err = client
        .load_plan(PlanKind::Scalar, "no spaces allowed", 1, "{}")
        .unwrap_err();
    assert_eq!(err.server_code(), Some(ErrorCode::PlanInvalid), "{err}");
}
