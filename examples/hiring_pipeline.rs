//! A hiring pipeline with classifier-level fairness accounting — the
//! paper's job-application vignette (Section II) carried to a decision.
//!
//! Applicants have career features `X` (two scores), an unprotected
//! attribute `U` (college education), and a protected attribute `S`. The
//! historical outcome (hired or not) was biased: conditional on `U`, the
//! `s=1` group's features are shifted up, so a classifier trained on raw
//! data inherits the bias. We repair the training data with the
//! distributional OT repair, retrain, and compare u-conditional disparate
//! impact (Definition 2.3) and accuracy.
//!
//! Run: `cargo run --release --example hiring_pipeline`

use rand::rngs::StdRng;
use rand::SeedableRng;

use ot_fair_repair::fairness::logistic::LogisticConfig;
use ot_fair_repair::prelude::*;

/// The "true" (historically biased) hiring rule: a threshold on the raw
/// score sum — which encodes the group shift, i.e. model unfairness.
fn historic_label(p: &LabelledPoint) -> u8 {
    u8::from(p.x[0] + p.x[1] > 0.8)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(31);

    // Population: within each education group u, s=1 applicants' scores
    // are shifted +1 relative to s=0 — the (X !⊥ S)|U dependence the
    // repair must remove. (Between-u differences are structural and kept.)
    let spec = SimulationSpec {
        means: [
            [vec![-0.8, -0.8], vec![0.2, 0.2]],
            [vec![0.3, 0.3], vec![1.3, 1.3]],
        ],
        sigma: 1.0,
        pr_u0: 0.5,
        pr_s0_given_u: [0.4, 0.25],
        covs: None,
    };
    let split = spec.generate(800, 8_000, &mut rng)?;

    // Repair the archive (the training torrent) with a plan designed on
    // the research subset.
    let plan = RepairPlanner::new(RepairConfig::with_n_q(60)).design(&split.research)?;
    let repaired = plan.repair_dataset(&split.archive, &mut rng)?;

    // Train classifiers on raw vs repaired features. Labels are the
    // historic (biased) decisions in both cases — repair acts on X only.
    let cfg = LogisticConfig::default();
    let model_raw = LogisticRegression::fit_dataset(&split.archive, historic_label, cfg)?;
    let model_rep = LogisticRegression::fit_dataset(&repaired, historic_label, cfg)?;

    // Deploy both on a fresh applicant pool (raw features — deployment
    // uses the repaired *model*, candidates are not transformed).
    let pool = spec.sample_dataset(10_000, &mut rng)?;
    let preds_raw = model_raw.predict_dataset(&pool)?;
    // The repaired model expects repaired features: apply the same plan.
    let pool_repaired = plan.repair_dataset(&pool, &mut rng)?;
    let preds_rep = model_rep.predict_dataset(&pool_repaired)?;

    let di_raw = conditional_disparate_impact(&pool, &preds_raw)?;
    let di_rep = conditional_disparate_impact(&pool, &preds_rep)?;

    println!("u-conditional disparate impact DI(g,u) = Pr[hire|s=0,u] / Pr[hire|s=1,u]");
    println!(
        "{:<22} {:>10} {:>10} {:>22}",
        "model", "DI(u=0)", "DI(u=1)", "passes 4/5 rule?"
    );
    println!(
        "{:<22} {:>10.3} {:>10.3} {:>22}",
        "raw data",
        di_raw.di_per_u[0],
        di_raw.di_per_u[1],
        di_raw.passes_four_fifths_rule()
    );
    println!(
        "{:<22} {:>10.3} {:>10.3} {:>22}",
        "OT-repaired data",
        di_rep.di_per_u[0],
        di_rep.di_per_u[1],
        di_rep.passes_four_fifths_rule()
    );

    let acc_raw = model_raw.accuracy(&pool, historic_label)?;
    let acc_rep = model_rep.accuracy(&pool_repaired, historic_label)?;
    println!(
        "\naccuracy vs historic labels: raw {acc_raw:.3}, repaired {acc_rep:.3} \
         (repair trades some label fidelity for fairness — Section III)"
    );

    let cd = ConditionalDependence::default();
    println!(
        "feature-level E: raw {:.4} -> repaired {:.4}",
        cd.evaluate(&split.archive)?.aggregate(),
        cd.evaluate(&repaired)?.aggregate()
    );
    Ok(())
}
