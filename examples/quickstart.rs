//! Quickstart: repair archival data for fairness in ~40 lines.
//!
//! Simulates the paper's Section V-A population, designs a repair plan on
//! a small labelled research set (Algorithm 1), repairs a 10×-larger
//! archive off-sample (Algorithm 2), and reports the conditional
//! `s|u`-dependence `E` before and after.
//!
//! Run: `cargo run --release --example quickstart`

use rand::rngs::StdRng;
use rand::SeedableRng;

use ot_fair_repair::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2024);

    // 1. Data: 500 labelled research points, 5000 archival points.
    let spec = SimulationSpec::paper_defaults();
    let data = spec.generate(500, 5_000, &mut rng)?;
    println!(
        "research: {} points, archive: {} points, d = {}",
        data.research.len(),
        data.archive.len(),
        data.research.dim()
    );

    // 2. Design the repair plan on the research data alone (Algorithm 1).
    let plan = RepairPlanner::new(RepairConfig::with_n_q(50)).design(&data.research)?;
    println!(
        "designed {} feature plans (nQ = {})",
        plan.feature_plans().len(),
        plan.config.n_q
    );

    // 3. Repair the archive off-sample (Algorithm 2).
    let repaired = plan.repair_dataset(&data.archive, &mut rng)?;

    // 4. Measure fairness: E = conditional symmetrized-KLD (Def. 2.4).
    let cd = ConditionalDependence::default();
    let before = cd.evaluate(&data.archive)?;
    let after = cd.evaluate(&repaired)?;
    println!("\n{:<12} {:>12} {:>12}", "feature", "E before", "E after");
    for k in 0..data.archive.dim() {
        println!(
            "{:<12} {:>12.4} {:>12.4}",
            format!("x{k}"),
            before.e_per_feature[k],
            after.e_per_feature[k]
        );
    }
    println!(
        "\naggregate E: {:.4} -> {:.4}  ({:.1}x reduction)",
        before.aggregate(),
        after.aggregate(),
        before.aggregate() / after.aggregate()
    );

    // 5. How much did the repair move the data?
    let damage = dataset_damage(&data.archive, &repaired)?;
    println!("mean RMSE displacement: {:.4}", damage.mean_rmse());
    Ok(())
}
