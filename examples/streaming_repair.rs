//! Repairing a torrent: design once, serialize the plan, and repair an
//! unbounded archival stream — the paper's motivating deployment
//! (Sections I and IV).
//!
//! Demonstrates:
//! * plan persistence (design on one machine, repair on another);
//! * `StreamingRepairer` with O(1) per-point cost;
//! * the out-of-range monitor flagging stationarity violations when the
//!   stream drifts (Section V-A2a / VI discussion).
//!
//! Run: `cargo run --release --example streaming_repair`

use rand::rngs::StdRng;
use rand::SeedableRng;

use ot_fair_repair::data::Drift;
use ot_fair_repair::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(99);

    // --- Design side: a small labelled research set, a plan, a JSON blob.
    let spec = SimulationSpec::paper_defaults();
    let research = spec.sample_dataset(500, &mut rng)?;
    let plan = RepairPlanner::new(RepairConfig::with_n_q(50)).design(&research)?;
    let blob = plan.to_json()?;
    println!(
        "designed plan: {} strata, serialized to {} bytes of JSON",
        plan.feature_plans().len(),
        blob.len()
    );

    // --- Deployment side: load the plan and attach it to a stream.
    let shipped = ot_fair_repair::repair::RepairPlan::from_json(&blob)?;
    let mut repairer = StreamingRepairer::new(shipped, 12345);

    let cd = ConditionalDependence::default();

    // Phase 1: a stationary torrent in 5 batches of 2000 points.
    println!("\nphase 1 — stationary stream:");
    for batch_no in 0..5 {
        let batch = spec.sample_dataset(2_000, &mut rng)?;
        let repaired_points = repairer.repair_batch(batch.points())?;
        let repaired = Dataset::from_points(repaired_points)?;
        let e = cd.evaluate(&repaired)?.aggregate();
        println!(
            "  batch {batch_no}: repaired E = {e:.4}, out-of-range rate = {:.4}",
            repairer.out_of_range_rate()
        );
    }

    // Phase 2: the population drifts (stationarity assumption violated).
    println!("\nphase 2 — drifting stream (mean shift +1.5 per feature):");
    let drift = Drift::MeanShift(vec![1.5, 1.5]);
    for batch_no in 0..3 {
        let batch = drift.apply(&spec.sample_dataset(2_000, &mut rng)?)?;
        let repaired_points = repairer.repair_batch(batch.points())?;
        let repaired = Dataset::from_points(repaired_points)?;
        let e = cd.evaluate(&repaired)?.aggregate();
        println!(
            "  batch {batch_no}: repaired E = {e:.4}, out-of-range rate = {:.4}  <- rising",
            repairer.out_of_range_rate()
        );
    }
    println!(
        "\n{} points repaired through one plan; {} feature values fell outside the\n\
         research range (the monitor practitioners should alarm on before trusting\n\
         repairs under drift).",
        repairer.stats().repaired,
        repairer.stats().out_of_range
    );
    Ok(())
}
