//! The Adult-income study (paper Section V-B), end to end — including the
//! realistic twist the paper defers to future work: archival data arrive
//! *without* the protected attribute, so `ŝ|u` is estimated by
//! Gaussian-mixture EM before repair.
//!
//! Uses the calibrated Adult-like synthetic generator by default; set
//! `ADULT_CSV=/path/to/adult.data` to run against the real UCI file.
//!
//! Run: `cargo run --release --example adult_income`

use rand::rngs::StdRng;
use rand::SeedableRng;

use ot_fair_repair::data::adult::load_adult_csv;
use ot_fair_repair::prelude::*;
use ot_fair_repair::stats::GaussianMixtureEm;

const FEATURES: [&str; 2] = ["age", "hours/week"];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(7);

    // 1. Data: research (labelled) + archive (protected labels withheld).
    let split = if let Ok(path) = std::env::var("ADULT_CSV") {
        println!("loading real Adult data from {path}");
        let file = std::fs::File::open(&path)?;
        let data = load_adult_csv(std::io::BufReader::new(file))?;
        data.split_research_archive(10_000.min(data.len() / 2), &mut rng)?
    } else {
        println!("using the calibrated Adult-like synthetic generator");
        AdultSynth::default().generate(10_000, 35_222, &mut rng)?
    };

    // 2. Design the repair on the labelled research data.
    let plan = RepairPlanner::new(RepairConfig::with_n_q(250)).design(&split.research)?;

    // 3. The archive's s labels are "unobserved": estimate s|u by EM on
    //    the hours/week feature, anchored by research-group moments.
    let em = GaussianMixtureEm::default();
    let mut fits = Vec::new();
    for u in 0..2u8 {
        let r0 = split.research.feature_column(GroupKey { u, s: 0 }, 1)?;
        let r1 = split.research.feature_column(GroupKey { u, s: 1 }, 1)?;
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let sd = |v: &[f64], m: f64| {
            (v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (v.len() - 1) as f64)
                .sqrt()
                .max(1e-3)
        };
        let (m0, m1) = (mean(&r0), mean(&r1));
        let w0 = r0.len() as f64 / (r0.len() + r1.len()) as f64;
        let pooled = split.archive.feature_column_u(u, 1)?;
        fits.push(em.fit_with_init(&pooled, w0, [m0, m1], [sd(&r0, m0), sd(&r1, m1)])?);
    }
    let mut correct = 0usize;
    let relabelled = Dataset::from_points(
        split
            .archive
            .points()
            .iter()
            .map(|p| {
                let s_hat = fits[p.u as usize].classify(p.x[1]);
                if s_hat == p.s {
                    correct += 1;
                }
                LabelledPoint {
                    x: p.x.clone(),
                    s: s_hat,
                    u: p.u,
                }
            })
            .collect(),
    )?;
    println!(
        "EM-estimated archival s-labels: {:.1}% agreement with ground truth",
        100.0 * correct as f64 / split.archive.len() as f64
    );

    // 4. Repair the archive under estimated labels and under oracle labels.
    let repaired_est = plan.repair_dataset(&relabelled, &mut rng)?;
    let repaired_oracle = plan.repair_dataset(&split.archive, &mut rng)?;

    // 5. Evaluate E against the TRUE labels in all cases.
    let restore_labels = |repaired: &Dataset| -> Result<Dataset, Box<dyn std::error::Error>> {
        Ok(Dataset::from_points(
            repaired
                .points()
                .iter()
                .zip(split.archive.points())
                .map(|(rep, orig)| LabelledPoint {
                    x: rep.x.clone(),
                    s: orig.s,
                    u: orig.u,
                })
                .collect(),
        )?)
    };
    let repaired_est = restore_labels(&repaired_est)?;

    let cd = ConditionalDependence::default();
    let e_before = cd.evaluate(&split.archive)?;
    let e_oracle = cd.evaluate(&repaired_oracle)?;
    let e_est = cd.evaluate(&repaired_est)?;

    println!(
        "\n{:<14} {:>14} {:>18} {:>18}",
        "feature", "E unrepaired", "E repaired (Ŝ=EM)", "E repaired (S known)"
    );
    for k in 0..2 {
        println!(
            "{:<14} {:>14.4} {:>18.4} {:>18.4}",
            FEATURES[k],
            e_before.e_per_feature[k],
            e_est.e_per_feature[k],
            e_oracle.e_per_feature[k]
        );
    }
    println!(
        "\naggregate: unrepaired {:.4}, EM-labelled {:.4}, oracle {:.4}",
        e_before.aggregate(),
        e_est.aggregate(),
        e_oracle.aggregate()
    );
    println!(
        "Label quality gates repair quality: on Adult-like data the s-conditional\n\
         hours distributions overlap heavily, so EM labels are near-chance and the\n\
         repair is diluted accordingly — exactly why the paper flags s|u-unlabelled\n\
         repair (its refs [37]-[39]) as the priority future-work direction."
    );
    Ok(())
}
