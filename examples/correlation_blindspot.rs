//! The correlation blind spot — Section VI of the paper, made concrete.
//!
//! The per-feature repair cannot see `s|u`-dependence that lives purely in
//! the correlation *between* features. This example builds the adversarial
//! population (identical marginals, opposite correlation sign per `s`),
//! shows the paper's per-feature repair passing a marginal audit while a
//! joint audit fails, then fixes it with the 2-D joint repair.
//!
//! Run: `cargo run --release --example correlation_blindspot`

use rand::rngs::StdRng;
use rand::SeedableRng;

use ot_fair_repair::prelude::*;
use ot_fair_repair::stats::linalg::Matrix;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(17);

    // s=0 applicants: scores positively correlated (rho = +0.8).
    // s=1 applicants: scores negatively correlated (rho = -0.8).
    // Same means, same variances: every 1-D audit sees nothing.
    let cov = |rho: f64| Matrix::from_rows(2, 2, vec![1.0, rho, rho, 1.0]).unwrap();
    let spec = SimulationSpec {
        means: [
            [vec![0.0, 0.0], vec![0.0, 0.0]],
            [vec![0.0, 0.0], vec![0.0, 0.0]],
        ],
        sigma: 1.0,
        covs: Some([[cov(0.8), cov(-0.8)], [cov(0.8), cov(-0.8)]]),
        pr_u0: 0.5,
        pr_s0_given_u: [0.4, 0.4],
    };
    let split = spec.generate(1_500, 5_000, &mut rng)?;

    let marginal_audit = ConditionalDependence::default();
    let joint_audit = JointDependence::default();

    let report = |name: &str, data: &Dataset| -> Result<(), Box<dyn std::error::Error>> {
        println!(
            "{name:<28} marginal E = {:.4}   joint E = {:.4}",
            marginal_audit.evaluate(data)?.aggregate(),
            joint_audit.evaluate(data)?
        );
        Ok(())
    };

    println!("population: identical marginals, correlation +0.8 (s=0) vs -0.8 (s=1)\n");
    report("unrepaired archive", &split.archive)?;

    // The paper's per-feature repair: marginally clean, jointly blind.
    let plan = RepairPlanner::new(RepairConfig::with_n_q(50)).design(&split.research)?;
    let per_feature = plan.repair_dataset(&split.archive, &mut rng)?;
    report("per-feature repair (paper)", &per_feature)?;

    // The joint (2-D support) repair removes the correlation dependence.
    let joint_plan = JointRepairPlan::design(&split.research, JointRepairConfig::default())?;
    let jointly = joint_plan.repair_dataset(&split.archive, &mut rng)?;
    report("joint 2-D repair", &jointly)?;

    println!(
        "\nTakeaway: auditing (and repairing) per feature — as the paper's Algorithm 1\n\
         does for scalability — certifies this dataset as fair while a classifier\n\
         using BOTH scores can still recover s from their interaction. The joint\n\
         repair closes the gap at nQ^2 design cost (Sec. VI future work, delivered)."
    );
    Ok(())
}
