//! # ot-fair-repair
//!
//! A production-quality Rust implementation of
//! *"Optimal Transport for Fairness: Archival Data Repair using Small
//! Research Data Sets"* (Langbridge, Quinn & Shorten, ICDE 2024,
//! arXiv:2403.13864).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`stats`] — distributions, KDE, divergences, EM ([`otr_stats`]).
//! * [`ot`] — exact & entropic optimal-transport solvers and barycentres
//!   ([`otr_ot`]).
//! * [`data`] — tables, CSV, synthetic generators ([`otr_data`]).
//! * [`fairness`] — the conditional-KLD fairness measure `E`, disparate
//!   impact, and a logistic-regression classifier ([`otr_fairness`]).
//! * [`repair`] — the paper's contribution: distributional repair-plan
//!   design (Algorithm 1), off-sample archival repair (Algorithm 2), and
//!   the geometric on-sample baseline ([`otr_core`]).
//! * [`serve`] — repair-as-a-service: the `otrepaird` daemon, its plan
//!   registry, and the wire protocol ([`otr_serve`]).
//!
//! ## Quickstart
//!
//! ```
//! use ot_fair_repair::prelude::*;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! // Simulate the paper's Section V-A population and split it.
//! let spec = SimulationSpec::paper_defaults();
//! let data = spec.generate(500, 2000, &mut rng).unwrap();
//!
//! // Design the repair on the small research set (Algorithm 1)...
//! let plan = RepairPlanner::new(RepairConfig::with_n_q(50))
//!     .design(&data.research)
//!     .unwrap();
//! // ...and repair the archival torrent (Algorithm 2).
//! let repaired = plan.repair_dataset(&data.archive, &mut rng).unwrap();
//! assert_eq!(repaired.len(), data.archive.len());
//!
//! // Conditional dependence of X on S given U drops.
//! let cd = ConditionalDependence::default();
//! let before = cd.evaluate(&data.archive).unwrap().aggregate();
//! let after = cd.evaluate(&repaired).unwrap().aggregate();
//! assert!(after < before);
//! ```

pub use otr_core as repair;
pub use otr_data as data;
pub use otr_fairness as fairness;
pub use otr_ot as ot;
pub use otr_serve as serve;
pub use otr_stats as stats;

/// Convenience prelude pulling in the types used by almost every caller.
pub mod prelude {
    pub use otr_core::{
        dataset_damage, dataset_damage_columnar, plan_group_divergences, ContinuousUPoint,
        ContinuousURepairer, DamageReport, DriftConfig, DriftMonitor, GeometricRepair,
        GroupBlindRepairer, JointDesignReport, JointRepairConfig, JointRepairPlan, MassSplit,
        MongeRepair, RepairConfig, RepairPlan, RepairPlanner, SolverBackend, StratumDrift,
        StreamingRepairer,
    };
    pub use otr_data::{
        AdultSynth, ColumnarDataset, Dataset, Drift, GroupKey, LabelledPoint, SimulationSpec,
        SplitData,
    };
    pub use otr_fairness::{
        conditional_disparate_impact, ConditionalDependence, DiReport, EReport, JointDependence,
        LogisticRegression, WassersteinDependence,
    };
    pub use otr_ot::{DiscreteDistribution, EpsSchedule, KernelChoice, MidpointCdf, OtPlan};
}
