//! `otrepaird` — the long-running repair server.
//!
//! Holds validated repair plans hot in a named/versioned registry and
//! repairs archives over a minimal length-prefixed binary protocol,
//! sharding each request across a worker pool. Same seed + same plan ⇒
//! same bytes, whatever the shard layout or client interleaving — and
//! byte-identical to an offline `otrepair apply`.
//!
//! ```text
//! otrepaird --bind 127.0.0.1:7878 --plans ./plans
//! otrepair client ping --addr 127.0.0.1:7878
//! ```
//!
//! Knobs and lifecycle: `docs/operations.md`. Wire format:
//! `docs/protocol.md`.

use std::process::ExitCode;

use ot_fair_repair::serve::daemon::{self, DaemonArgs};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "otrepaird — repair-as-a-service daemon\n\nUSAGE:\n  otrepaird [options]\n\n{}",
            daemon::USAGE
        );
        return ExitCode::SUCCESS;
    }
    let parsed = match DaemonArgs::parse(&args) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("otrepaird: error: {e} (try --help)");
            return ExitCode::FAILURE;
        }
    };
    match daemon::run(&parsed) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("otrepaird: error: {e}");
            ExitCode::FAILURE
        }
    }
}
