//! `otrepair` — command-line interface to the fairness-repair pipeline.
//!
//! The deployment loop the paper motivates, as three commands:
//!
//! ```text
//! # 1. design a plan on the small labelled research extract
//! otrepair design --research research.csv --out plan.json --nq 50
//!
//! # 2. repair archival torrents anywhere the plan is shipped
//! otrepair apply --plan plan.json --data archive.csv --out repaired.csv --seed 7
//!
//! # 3. audit conditional dependence before/after
//! otrepair evaluate --data archive.csv
//! otrepair evaluate --data repaired.csv
//! ```
//!
//! CSV format: header `s,u,x0,x1,…`; `s`/`u` in `{0,1}`; features finite
//! floats (see `otr_data::labelled_csv`).

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

use ot_fair_repair::prelude::*;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("design") => cmd_design(&args[1..]),
        Some("apply") => cmd_apply(&args[1..]),
        Some("evaluate") => cmd_evaluate(&args[1..]),
        Some("drift") => cmd_drift(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("client") => cmd_client(&args[1..]),
        Some("--help" | "-h" | "help") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}` (try --help)").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("otrepair: error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "otrepair — optimal-transport fairness repair of archival data\n\
         \n\
         USAGE:\n\
           otrepair design   --research <csv> --out <plan.json> [--nq N] [--t T]\n\
                             [--solver exact|simplex|sinkhorn:<eps>[:scaled[:<eps0>:<factor>]]]\n\
                             [--min-group N] [--threads N] [--verbose]\n\
           otrepair design   --joint --research <csv> --out <plan.json> [--nq N] [--t T]\n\
                             [--eps E] [--eps-scaling off|on|<eps0>:<factor>]\n\
                             [--kernel auto|dense|separable]\n\
                             [--solver …] [--min-group N] [--threads N] [--verbose]\n\
           otrepair apply    --plan <plan.json> --data <csv> --out <csv>\n\
                             [--seed N] [--partial LAMBDA] [--monge] [--threads N]\n\
                             [--layout row|columnar] [--batch-rows N]\n\
           otrepair apply    --joint --plan <plan.json> --data <csv> --out <csv>\n\
                             [--seed N] [--threads N]\n\
           otrepair evaluate --data <csv> [--grid N] [--joint]\n\
           otrepair drift    --data <csv> --out <csv> [--mean-shift V1,V2,..]\n\
                             [--scale F1,F2,..] [--group-shift S:V1,V2,..]\n\
           otrepair serve    [--bind ADDR] [--plans DIR] [--threads N] [--shards N]\n\
                             [--batch-rows N] [--max-conns N] [--deadline-ms N]\n\
                             [--port-file PATH]\n\
           otrepair client   <ping|info|plans|load|evict|repair|watch|drift|audit>\n\
                             --addr HOST:PORT [--retries N] [--timeout MS] …\n\
         \n\
         CSV format: header `s,u,x0,x1,…`; s/u in {{0,1}}; finite float features.\n\
         \n\
         JOINT (MULTI-FEATURE) DESIGN:\n\
           --joint designs one multivariate plan over the nQ^d product grid\n\
           of all d ≥ 2 features (captures correlation-borne dependence a\n\
           per-feature plan misses). --eps sets the entropic regularization;\n\
           --eps-scaling controls the annealed ε-schedule with warm-started\n\
           duals (default on: geometric 1.0 → ε with factor 0.25 — the big\n\
           joint-design speedup). --kernel picks the Gibbs-kernel\n\
           representation of the entropic solves: the joint cost factorizes\n\
           as K₁ ⊗ … ⊗ K_d, so `auto` (default; OTR_KERNEL env can override\n\
           it) runs each matvec as d O(nQ^d·nQ) axis passes instead of the\n\
           O(nQ^2d) dense sweep — at d ≥ 3 the dense kernel rarely fits, so\n\
           `auto` is what makes e.g. a 3-feature nQ=16 design tractable;\n\
           `dense` forces the dense kernel. --verbose prints the design\n\
           report: barycentre iterations / final delta per stratum,\n\
           per-stage ε schedule stats, the resolved kernel, plan transport\n\
           costs, and wall time.\n\
         \n\
         PARALLELISM:\n\
           --threads 0 (default) = auto: the OTR_THREADS environment variable if\n\
           set, else all available cores. Large OT kernels (Sinkhorn scaling,\n\
           barycentre matvecs) additionally chunk internally once they exceed\n\
           OTR_KERNEL_CELLS matrix cells (default 32768); smaller solves stay\n\
           sequential, and past the same threshold the kernels' column phase\n\
           reads a transposed copy (bitwise-identical, just cache-friendly).\n\
           Repair output is bit-identical for any thread count and any\n\
           threshold at a given --seed — see docs/determinism.md.\n\
         \n\
         LAYOUT:\n\
           apply repairs through the columnar (struct-of-arrays) kernels by\n\
           default: CSV parses straight into per-feature columns and whole\n\
           column slices are quantized/gathered in vectorizable loops.\n\
           --layout row forces the per-point path (required by --partial and\n\
           --monge, which imply it when --layout is omitted). Both layouts\n\
           produce byte-identical output at a given --seed. --batch-rows\n\
           sets the columnar row-batch size (default: the OTR_BATCH_ROWS\n\
           environment variable if set, else 8192); batch size is pure\n\
           blocking policy and never changes the output.\n\
         \n\
         SERVING:\n\
           `otrepair serve` runs the otrepaird daemon in-process (same flags;\n\
           see `otrepaird --help` and docs/operations.md — --max-conns caps\n\
           concurrent connections, --deadline-ms bounds each frame's arrival\n\
           and each response write). `otrepair client` talks to a running\n\
           daemon:\n\
             client ping|info|plans             --addr HOST:PORT\n\
             client load   --addr A --plan <json> --name N [--version V] [--joint]\n\
             client evict  --addr A --name N --version V\n\
             client repair --addr A --name N --data <csv> --out <csv>\n\
                           [--version V] [--seed N]\n\
             client watch  --addr A --name N [--threshold D] [--trips N]\n\
                           [--check-every N] [--min-rows N]\n\
             client drift  --addr A --name N\n\
             client audit  --addr A --name N\n\
           Every client action retries transient failures (connection\n\
           drops, Overloaded, DeadlineExceeded) with exponential backoff:\n\
           --retries N bounds the retries (default 3; 0 = single attempt)\n\
           and --timeout MS bounds the whole call across attempts\n\
           (default 0 = unbounded). Retrying is safe because served repair\n\
           is bit-deterministic in (plan, seed, archive).\n\
           Served repair output is byte-identical to an offline\n\
           `otrepair apply` with the same plan and --seed, whatever the\n\
           server's shard or thread policy (docs/determinism.md).\n\
         \n\
         DRIFT LIFECYCLE:\n\
           `client watch` arms a streaming drift monitor on the latest\n\
           version of a scalar plan: every subsequent served repair folds\n\
           its archive rows into per-(s,u)-stratum histograms and compares\n\
           them (symmetrized KL) against the plan's recorded research\n\
           marginals at deterministic row-count checkpoints. After --trips\n\
           consecutive over---threshold checkpoints the daemon re-designs\n\
           the plan on the observed rows (warm-started from the plan's\n\
           banked Sinkhorn duals), registers it as the next version of the\n\
           same name, persists it to --plans (when set), and books an\n\
           audit record. `client drift` shows the monitor state;\n\
           `client audit` lists past swaps. `otrepair drift` (top level)\n\
           applies a synthetic distribution shift to a CSV — the test\n\
           injector used by ci/serve_session.sh. See docs/operations.md,\n\
           \"Drift-aware lifecycle\"."
    );
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// Minimal `--flag value` parser: returns the value following `flag`.
fn opt<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn required<'a>(args: &'a [String], flag: &str) -> Result<&'a str, String> {
    opt(args, flag).ok_or_else(|| format!("missing required option `{flag} <value>`"))
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn load_dataset(path: &str) -> Result<Dataset, Box<dyn std::error::Error>> {
    let file = File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    Ok(ot_fair_repair::data::read_labelled_csv(BufReader::new(
        file,
    ))?)
}

fn cmd_design(args: &[String]) -> CliResult {
    if has_flag(args, "--joint") {
        return cmd_design_joint(args);
    }
    let research_path = required(args, "--research")?;
    let out_path = required(args, "--out")?;
    let mut config = RepairConfig::with_n_q(opt(args, "--nq").map_or(Ok(50), str::parse)?);
    if let Some(t) = opt(args, "--t") {
        config.t = t.parse()?;
    }
    if let Some(mg) = opt(args, "--min-group") {
        config.min_group_size = mg.parse()?;
    }
    if let Some(solver) = opt(args, "--solver") {
        // Backend spellings (and their validation) are owned by the OT
        // crate's unified solver seam.
        config.solver = solver.parse::<SolverBackend>()?;
    }
    if let Some(threads) = opt(args, "--threads") {
        config.threads = threads.parse()?;
    }

    let research = load_dataset(research_path)?;
    eprintln!(
        "designing plan on {} research points (d = {}, nQ = {}, t = {})",
        research.len(),
        research.dim(),
        config.n_q,
        config.t
    );
    let plan = RepairPlanner::new(config).design(&research)?;
    if has_flag(args, "--verbose") {
        for fp in plan.feature_plans() {
            let support = &fp.support;
            eprintln!(
                "  (u={}, k={}): support [{:.4}, {:.4}] ({} states), solver {}",
                fp.u,
                fp.k,
                support[0],
                support[support.len() - 1],
                support.len(),
                config.solver,
            );
        }
    }
    std::fs::write(out_path, plan.to_json()?)
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    eprintln!(
        "wrote {} feature plans to {out_path}",
        plan.feature_plans().len()
    );
    Ok(())
}

/// Parse the `--eps-scaling` spelling: `off` (cold solve), `on`
/// (default schedule), or `<eps0>:<factor>`.
fn parse_eps_scaling(spec: &str) -> Result<Option<EpsSchedule>, Box<dyn std::error::Error>> {
    match spec {
        "off" | "none" => Ok(None),
        "on" | "default" => Ok(Some(EpsSchedule::default())),
        _ => match spec.split_once(':') {
            Some((eps0, factor)) => {
                let schedule = EpsSchedule::geometric(eps0.parse()?, factor.parse()?);
                schedule.validate()?;
                Ok(Some(schedule))
            }
            None => Err(format!(
                "cannot parse --eps-scaling `{spec}` (expected `off`, `on`, or `<eps0>:<factor>`)"
            )
            .into()),
        },
    }
}

fn cmd_design_joint(args: &[String]) -> CliResult {
    let research_path = required(args, "--research")?;
    let out_path = required(args, "--out")?;
    let mut config = JointRepairConfig::default();
    if let Some(nq) = opt(args, "--nq") {
        config.n_q = nq.parse()?;
    }
    if let Some(t) = opt(args, "--t") {
        config.t = t.parse()?;
    }
    if let Some(eps) = opt(args, "--eps") {
        config.epsilon = eps.parse()?;
    }
    if let Some(spec) = opt(args, "--eps-scaling") {
        config.eps_scaling = parse_eps_scaling(spec)?;
    }
    if let Some(kernel) = opt(args, "--kernel") {
        // Spelling and validation owned by the OT crate's kernel seam.
        config.kernel = kernel.parse::<KernelChoice>()?;
    }
    if let Some(mg) = opt(args, "--min-group") {
        config.min_group_size = mg.parse()?;
    }
    if let Some(solver) = opt(args, "--solver") {
        config.solver = Some(solver.parse::<SolverBackend>()?);
    }
    if let Some(threads) = opt(args, "--threads") {
        config.threads = threads.parse()?;
    }

    let research = load_dataset(research_path)?;
    let states = config.n_q.checked_pow(research.dim() as u32);
    eprintln!(
        "designing joint plan on {} research points (d = {}, nQ = {} per dim → {} product \
         states, eps = {}, t = {})",
        research.len(),
        research.dim(),
        config.n_q,
        states.map_or_else(|| "overflowing".into(), |n| n.to_string()),
        config.epsilon,
        config.t
    );
    let (plan, report) = JointRepairPlan::design_with_report(&research, config)?;
    if has_flag(args, "--verbose") {
        print_joint_report(&report);
    }
    std::fs::write(out_path, plan.to_json()?)
        .map_err(|e| format!("cannot write {out_path}: {e}"))?;
    eprintln!("wrote joint plan ({} strata) to {out_path}", 2);
    Ok(())
}

/// Render a [`JointDesignReport`] for `design --joint --verbose`.
fn print_joint_report(report: &JointDesignReport) {
    eprintln!(
        "joint design report: d = {}, nQ = {}, eps = {}, solver = {}, kernel = {}, {:.2} s wall",
        report.dims, report.n_q, report.epsilon, report.solver, report.kernel, report.design_secs
    );
    match &report.eps_scaling {
        Some(s) => eprintln!(
            "  eps schedule: {} -> {} (factor {}, {} iters / tol {:.0e} per stage)",
            s.eps0,
            report.epsilon,
            s.factor,
            s.effective_stage_iters(),
            s.effective_stage_tol()
        ),
        None => eprintln!(
            "  eps schedule: off (cold solve at eps = {})",
            report.epsilon
        ),
    }
    for stratum in &report.strata {
        // With ε-scaling off the "per-stage" breakdown is the whole
        // solve; say so instead of echoing a one-entry stage list.
        let stages = if report.eps_scaling.is_none() {
            "single stage (eps-scaling off)".to_string()
        } else {
            stratum
                .barycentre_stages
                .iter()
                .map(|s| format!("{}:{}", s.eps, s.iterations))
                .collect::<Vec<String>>()
                .join(", ")
        };
        eprintln!(
            "  u={}: barycentre {} iters (final delta {:.2e}; per-stage eps:iters {})",
            stratum.u, stratum.barycentre_iterations, stratum.barycentre_final_delta, stages
        );
        eprintln!(
            "       plan transport cost: s=0 {:.4}, s=1 {:.4}",
            stratum.plan_transport_cost[0], stratum.plan_transport_cost[1]
        );
    }
}

fn cmd_apply(args: &[String]) -> CliResult {
    let plan_path = required(args, "--plan")?;
    let data_path = required(args, "--data")?;
    let out_path = required(args, "--out")?;
    let seed: u64 = opt(args, "--seed").map_or(Ok(0), str::parse)?;
    let partial: Option<f64> = opt(args, "--partial").map(str::parse).transpose()?;
    let use_monge = has_flag(args, "--monge");
    // `--layout`: columnar (default for the standard repair) runs the
    // column-slice kernels; `row` is the escape hatch. Byte-identical
    // output either way.
    let layout: Option<bool> = match opt(args, "--layout") {
        None => None,
        Some("columnar") => Some(true),
        Some("row") => Some(false),
        Some(other) => {
            return Err(format!("unknown --layout `{other}` (expected `row` or `columnar`)").into())
        }
    };

    if has_flag(args, "--joint") {
        if layout == Some(true) {
            return Err("--joint supports only --layout row".into());
        }
        if partial.is_some() || use_monge {
            return Err("--joint supports neither --partial nor --monge".into());
        }
        let blob = std::fs::read_to_string(plan_path)
            .map_err(|e| format!("cannot read {plan_path}: {e}"))?;
        let mut plan = JointRepairPlan::from_json(&blob)?;
        if let Some(threads) = opt(args, "--threads") {
            plan.set_threads(threads.parse()?);
        }
        let data = load_dataset(data_path)?;
        eprintln!(
            "repairing {} points jointly through {plan_path} (d = {}, nQ = {} per dim)",
            data.len(),
            plan.dims(),
            plan.n_q()
        );
        let repaired = plan.repair_dataset_par(&data, seed)?;
        let out = File::create(out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
        ot_fair_repair::data::write_labelled_csv(BufWriter::new(out), &repaired)?;
        let damage = dataset_damage(&data, &repaired)?;
        eprintln!(
            "wrote {out_path}; mean RMSE displacement {:.4}",
            damage.mean_rmse()
        );
        return Ok(());
    }

    let blob =
        std::fs::read_to_string(plan_path).map_err(|e| format!("cannot read {plan_path}: {e}"))?;
    let mut plan = RepairPlan::from_json(&blob)?;
    if let Some(threads) = opt(args, "--threads") {
        // Deployment-side override of the design-time thread count; the
        // repaired bytes depend only on --seed, never on this.
        plan.config.threads = threads.parse()?;
    }
    if let Some(batch) = opt(args, "--batch-rows") {
        // Columnar batch size; like --threads, pure execution policy
        // (default: auto via OTR_BATCH_ROWS).
        plan.config.batch_rows = Some(batch.parse()?);
    }

    // The columnar fast path: ingest straight into columns, repair with
    // the batch kernels, stream back out. The default unless --monge /
    // --partial (row-only modes) or an explicit --layout row.
    let use_columnar = layout.unwrap_or(!use_monge && partial.is_none());
    if use_columnar {
        if use_monge || partial.is_some() {
            return Err(
                "--layout columnar supports neither --partial nor --monge (use --layout row)"
                    .into(),
            );
        }
        let file = File::open(data_path).map_err(|e| format!("cannot open {data_path}: {e}"))?;
        let data = ot_fair_repair::data::read_labelled_csv_columnar(BufReader::new(file))?;
        eprintln!(
            "repairing {} points through {plan_path} (randomized mode, columnar layout)",
            data.len()
        );
        let repaired = plan.repair_columnar_par(&data, seed)?;
        let out = File::create(out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
        ot_fair_repair::data::write_labelled_csv_columnar(BufWriter::new(out), &repaired)?;
        let damage = dataset_damage_columnar(&data, &repaired)?;
        eprintln!(
            "wrote {out_path}; mean RMSE displacement {:.4}",
            damage.mean_rmse()
        );
        return Ok(());
    }

    let data = load_dataset(data_path)?;
    eprintln!(
        "repairing {} points through {} ({} mode)",
        data.len(),
        plan_path,
        if use_monge { "Monge" } else { "randomized" }
    );

    let repaired = if use_monge {
        if partial.is_some() {
            return Err("--partial and --monge are mutually exclusive".into());
        }
        MongeRepair::from_plan(&plan).repair_dataset(&data)?
    } else {
        // Per-row SplitMix64 streams: parallel, and bit-identical for
        // any thread count at a given seed.
        match partial {
            Some(lambda) => plan.repair_dataset_partial_par(&data, lambda, seed)?,
            None => plan.repair_dataset_par(&data, seed)?,
        }
    };

    let out = File::create(out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
    ot_fair_repair::data::write_labelled_csv(BufWriter::new(out), &repaired)?;
    let damage = dataset_damage(&data, &repaired)?;
    eprintln!(
        "wrote {out_path}; mean RMSE displacement {:.4}",
        damage.mean_rmse()
    );
    Ok(())
}

fn cmd_evaluate(args: &[String]) -> CliResult {
    let data_path = required(args, "--data")?;
    let data = load_dataset(data_path)?;
    let mut cd = ConditionalDependence::default();
    if let Some(g) = opt(args, "--grid") {
        cd.grid_size = g.parse()?;
    }
    let report = cd.evaluate(&data)?;
    println!("dataset: {} points, d = {}", data.len(), data.dim());
    println!("Pr[u=1] = {:.4}", data.prob_u1());
    for u in 0..2u8 {
        println!("Pr[s=0 | u={u}] = {:.4}", data.prob_s0_given_u(u));
    }
    println!("\nconditional s|u-dependence (symmetrized KLD, lower = fairer):");
    for (k, e) in report.e_per_feature.iter().enumerate() {
        println!(
            "  E_x{k} = {e:.6}   (E_u0 = {:.6}, E_u1 = {:.6})",
            report.e_uk[0][k], report.e_uk[1][k]
        );
    }
    println!("  aggregate E = {:.6}", report.aggregate());
    if has_flag(args, "--joint") {
        let mut jd = JointDependence::default();
        if let Some(g) = opt(args, "--joint-grid") {
            jd.grid_size = g.parse()?;
        } else if data.dim() > 2 {
            // The shared product grid has grid_size^d cells; the 2-D
            // default of 64 would be 262k+ cells at d = 3. Shrink it so
            // `evaluate --joint` stays interactive on wide data.
            jd.grid_size = 16;
        }
        let joint = jd.evaluate(&data)?;
        println!("  joint {}-D E = {joint:.6}", data.dim());
    }
    Ok(())
}

/// Parse a comma-separated float list (`0.5,-0.5`).
fn parse_floats(spec: &str) -> Result<Vec<f64>, Box<dyn std::error::Error>> {
    spec.split(',')
        .map(|v| {
            v.trim()
                .parse::<f64>()
                .map_err(|e| format!("bad float `{v}`: {e}").into())
        })
        .collect()
}

/// `otrepair drift`: apply a synthetic distribution shift to a CSV —
/// the injector ci/serve_session.sh uses to exercise the drift-aware
/// plan lifecycle end to end.
fn cmd_drift(args: &[String]) -> CliResult {
    let data_path = required(args, "--data")?;
    let out_path = required(args, "--out")?;
    let drift = match (
        opt(args, "--mean-shift"),
        opt(args, "--scale"),
        opt(args, "--group-shift"),
    ) {
        (Some(spec), None, None) => Drift::MeanShift(parse_floats(spec)?),
        (None, Some(spec), None) => {
            let factors = parse_floats(spec)?;
            Drift::VarianceScale {
                centre: vec![0.0; factors.len()],
                factors,
            }
        }
        (None, None, Some(spec)) => {
            let (s, shift) = spec
                .split_once(':')
                .ok_or("--group-shift expects `S:V1,V2,..` (e.g. 0:2.0,2.0)")?;
            Drift::GroupShift {
                s: s.trim().parse()?,
                shift: parse_floats(shift)?,
            }
        }
        (None, None, None) => {
            return Err("pick a drift: --mean-shift, --scale, or --group-shift".into())
        }
        _ => return Err("--mean-shift, --scale, and --group-shift are mutually exclusive".into()),
    };
    let data = load_dataset(data_path)?;
    let drifted = drift.apply(&data)?;
    let out = File::create(out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
    ot_fair_repair::data::write_labelled_csv(BufWriter::new(out), &drifted)?;
    eprintln!("wrote {} drifted rows to {out_path}", drifted.len());
    Ok(())
}

/// `otrepair serve`: the otrepaird daemon, in-process (identical flags).
fn cmd_serve(args: &[String]) -> CliResult {
    use ot_fair_repair::serve::daemon;
    if has_flag(args, "--help") {
        println!(
            "otrepair serve — run the otrepaird daemon\n\n{}",
            daemon::USAGE
        );
        return Ok(());
    }
    let parsed = daemon::DaemonArgs::parse(args)?;
    daemon::run(&parsed)?;
    Ok(())
}

/// `otrepair client <action>`: one scripted round trip per invocation,
/// through the retrying client (transient failures — connection drops,
/// `Overloaded`, `DeadlineExceeded` — are retried with exponential
/// backoff; permanent errors fail immediately).
fn cmd_client(args: &[String]) -> CliResult {
    use ot_fair_repair::serve::{PlanKind, RetryPolicy, RetryingClient};
    use std::time::Duration;

    let action = args.first().map(String::as_str).ok_or(
        "client needs an action: ping | info | plans | load | evict | repair | watch | drift | audit",
    )?;
    let rest = &args[1..];
    let addr = opt(rest, "--addr").unwrap_or("127.0.0.1:7878");
    let mut policy = RetryPolicy::default();
    if let Some(retries) = opt(rest, "--retries") {
        policy.retries = retries.parse()?;
    }
    let timeout_ms: u64 = opt(rest, "--timeout").map_or(Ok(0), str::parse)?;
    if timeout_ms > 0 {
        policy.call_deadline = Some(Duration::from_millis(timeout_ms));
    }
    let client = RetryingClient::new(addr, policy);
    match action {
        "ping" => {
            client
                .ping()
                .map_err(|e| format!("cannot reach {addr}: {e}"))?;
            println!("pong from {addr}");
        }
        "info" => {
            let info = client.info()?;
            println!(
                "otrepaird at {addr}: protocol v{}, {} plans, {} requests handled, \
                 {} rows repaired, {} shards x {} threads",
                info.protocol_version,
                info.plans,
                info.requests,
                info.rows_repaired,
                info.shards,
                info.threads
            );
            println!(
                "  lifetime: {} conns accepted, {} rejected overloaded (cap {}), \
                 {} deadline kills, {} panics caught",
                info.accepted,
                info.rejected_overload,
                if info.max_conns == 0 {
                    "off".into()
                } else {
                    info.max_conns.to_string()
                },
                info.deadline_kills,
                info.panics_caught
            );
            println!(
                "  lifecycle: {} drift watch(es) armed, {} hot swap(s) performed",
                info.watches, info.swaps
            );
        }
        "plans" => {
            let plans = client.list_plans()?;
            if plans.is_empty() {
                println!("no plans registered");
            }
            for p in plans {
                println!(
                    "{}@{}  {}  dim={}  nQ={}",
                    p.name, p.version, p.kind, p.dim, p.n_q
                );
            }
        }
        "load" => {
            let plan_path = required(rest, "--plan")?;
            let name = required(rest, "--name")?;
            let version: u32 = opt(rest, "--version").map_or(Ok(1), str::parse)?;
            let kind = if has_flag(rest, "--joint") {
                PlanKind::Joint
            } else {
                PlanKind::Scalar
            };
            let json = std::fs::read_to_string(plan_path)
                .map_err(|e| format!("cannot read {plan_path}: {e}"))?;
            client.load_plan(kind, name, version, &json)?;
            println!("loaded {name}@{version} ({kind})");
        }
        "evict" => {
            let name = required(rest, "--name")?;
            let version: u32 = required(rest, "--version")?.parse()?;
            client.evict_plan(name, version)?;
            println!("evicted {name}@{version}");
        }
        "watch" => {
            let name = required(rest, "--name")?;
            let mut config = DriftConfig::default();
            if let Some(v) = opt(rest, "--threshold") {
                config.threshold = v.parse()?;
            }
            if let Some(v) = opt(rest, "--trips") {
                config.trips = v.parse()?;
            }
            if let Some(v) = opt(rest, "--check-every") {
                config.check_every = v.parse()?;
            }
            if let Some(v) = opt(rest, "--min-rows") {
                config.min_rows = v.parse()?;
            }
            let version = client.watch(name, &config)?;
            println!(
                "watching {name}@{version}: threshold {} sym-KL, {} trip(s), checkpoint every {} rows after {}",
                config.threshold, config.trips, config.check_every, config.min_rows
            );
        }
        "drift" => {
            let name = required(rest, "--name")?;
            let report = client.drift_status(name)?;
            println!(
                "{name}@{}: {} rows seen, {} checkpoints, streak {}, {} swap(s), tripped: {}",
                report.version,
                report.rows_seen,
                report.checks,
                report.consecutive,
                report.swaps,
                report.tripped
            );
            for st in &report.strata {
                println!(
                    "  (u={}, x{}): sym-KL s=0 {:.4}, s=1 {:.4}",
                    st.u, st.k, st.divergence[0], st.divergence[1]
                );
            }
        }
        "audit" => {
            let name = required(rest, "--name")?;
            let records = client.audit(name)?;
            if records.is_empty() {
                println!("no hot swaps recorded for {name}");
            }
            for rec in records {
                println!(
                    "{name}@{} <- {name}@{}: tripped at sym-KL {:.4} over {} observed rows",
                    rec.version, rec.parent, rec.trigger_divergence, rec.rows_observed
                );
                for st in &rec.strata {
                    println!(
                        "  (u={}, x{}): group divergence E {:.4} -> {:.4}",
                        st.u, st.k, st.e_before, st.e_after
                    );
                }
            }
        }
        "repair" => {
            let name = required(rest, "--name")?;
            let data_path = required(rest, "--data")?;
            let out_path = required(rest, "--out")?;
            let version: u32 = opt(rest, "--version").map_or(Ok(0), str::parse)?;
            let seed: u64 = opt(rest, "--seed").map_or(Ok(0), str::parse)?;
            let file =
                File::open(data_path).map_err(|e| format!("cannot open {data_path}: {e}"))?;
            let archive = ot_fair_repair::data::read_labelled_csv_columnar(BufReader::new(file))?;
            eprintln!(
                "repairing {} rows via {name}@{} at {addr} (seed {seed})",
                archive.len(),
                if version == 0 {
                    "latest".into()
                } else {
                    version.to_string()
                }
            );
            let repaired = client.repair_archive(name, version, seed, &archive)?;
            let out =
                File::create(out_path).map_err(|e| format!("cannot create {out_path}: {e}"))?;
            ot_fair_repair::data::write_labelled_csv_columnar(BufWriter::new(out), &repaired)?;
            let damage = dataset_damage_columnar(&archive, &repaired)?;
            eprintln!(
                "wrote {out_path}; mean RMSE displacement {:.4}",
                damage.mean_rmse()
            );
        }
        other => {
            return Err(format!(
                "unknown client action `{other}` (expected ping | info | plans | load | evict | \
                 repair | watch | drift | audit)"
            )
            .into())
        }
    }
    Ok(())
}
